//! A transport-generic load harness: closed-loop and open-loop drivers
//! over any [`Transport`], recording latency into the store's log-linear
//! [`LatencyHistogram`]s.
//!
//! The two modes answer different questions:
//!
//! * **Closed loop** — each client thread issues its next operation as
//!   soon as the previous one completes. Measures the service's best
//!   case at a given concurrency, but hides queueing delay: a stalled
//!   server simply makes the clients stop offering load.
//! * **Open loop** — operations arrive on a *fixed schedule* at an
//!   offered rate, whether or not earlier ones have completed, and each
//!   latency is measured from the operation's **scheduled** start, not
//!   from when the harness got around to issuing it. A stall therefore
//!   shows up as the latency it actually inflicted on the schedule —
//!   the coordinated-omission-free discipline of wrk2/HdrHistogram.
//!
//! Issuing and completion are decoupled: each issuer thread submits
//! asynchronously and hands the in-flight future to a paired collector
//! thread, which polls all of its outstanding operations with a
//! thread-unpark waker and timestamps each completion the moment it
//! lands — a slow operation never delays the timestamping (or the
//! issuing) of its neighbors.

use crate::future::{join_all, OpFuture, ReadFuture, WriteFuture};
use crate::metrics::{LatencyHistogram, StoreMetrics};
use crate::net::Transport;
use crate::store::{BatchOp, StoreClient, StoreError};
use rsb_coding::Value;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// How the harness offers load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Each client issues its next operation when the previous completes.
    Closed,
    /// Operations arrive on a fixed schedule at this *total* rate
    /// (operations per second across all clients), independent of
    /// completions.
    Open {
        /// Offered load, in operations per second across all clients.
        rate: f64,
    },
}

/// One load run's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// Keyspace size; keys are the canonical `k000000`-style names.
    pub keys: usize,
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// Payload length of written values (must match the store's register
    /// value length).
    pub value_len: usize,
    /// Master seed for the per-client SplitMix64 op streams.
    pub seed: u64,
    /// Closed- or open-loop issuing.
    pub mode: LoadMode,
    /// Operations submitted per [`StoreClient::submit_batch`] call.
    /// `1` (or `0`, treated as `1`) issues through the per-op path;
    /// larger values group submissions so a batch costs one transport
    /// round. Closed-loop latency is then charged at batch granularity
    /// (issue → the batch's last completion, for every op in it);
    /// open-loop latency stays per-op from each op's *scheduled* start,
    /// so batching delay is charged to the ops it actually delayed.
    pub batch: usize,
}

impl LoadSpec {
    /// Total operations the run will issue.
    pub fn total_ops(&self) -> u64 {
        self.clients as u64 * self.ops_per_client as u64
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations issued.
    pub issued: u64,
    /// Operations that completed successfully.
    pub ok: u64,
    /// Operations that returned an error (with the first error seen).
    pub errors: u64,
    /// The first error encountered, if any.
    pub first_error: Option<StoreError>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Completion latency. Closed loop: issue → completion. Open loop:
    /// *scheduled* start → completion (coordinated-omission-free).
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Achieved completion throughput in kops/s.
    pub fn kops(&self) -> f64 {
        (self.ok + self.errors) as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e3
    }
}

/// SplitMix64 — the same tiny deterministic generator the workload crate
/// seeds with, inlined so the store crate needs no new dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A unit in `[0, 1)` from the generator's top 53 bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One client's deterministic operation stream.
struct OpStream {
    state: u64,
    keys: usize,
    write_fraction: f64,
    value_len: usize,
}

impl OpStream {
    fn new(spec: &LoadSpec, client: usize) -> Self {
        // Fork a per-client state so streams are independent but the
        // whole run is reproducible from the master seed.
        let mut master = spec.seed;
        let mut state = 0;
        for _ in 0..=client {
            state = splitmix(&mut master);
        }
        OpStream {
            state,
            keys: spec.keys.max(1),
            write_fraction: spec.write_fraction,
            value_len: spec.value_len,
        }
    }

    fn next_op(&mut self) -> (String, Option<Value>) {
        let key = format!("k{:06}", splitmix(&mut self.state) % self.keys as u64);
        if unit(&mut self.state) < self.write_fraction {
            let payload = splitmix(&mut self.state);
            (key, Some(Value::seeded(payload, self.value_len)))
        } else {
            (key, None)
        }
    }

    fn next_batch_op(&mut self) -> BatchOp {
        let (key, write) = self.next_op();
        match write {
            Some(v) => BatchOp::Write(key, v),
            None => BatchOp::Read(key),
        }
    }
}

/// An in-flight operation, either kind, polled by a collector.
enum OpFut {
    Read(ReadFuture),
    Write(WriteFuture),
    /// One operation of a submitted batch.
    Batched(OpFuture),
}

impl OpFut {
    fn poll_done(&mut self, cx: &mut Context<'_>) -> Poll<Result<(), StoreError>> {
        match self {
            OpFut::Read(f) => Pin::new(f).poll(cx).map(|r| r.map(|_| ())),
            OpFut::Write(f) => Pin::new(f).poll(cx),
            OpFut::Batched(f) => Pin::new(f).poll(cx).map(|r| r.map(|_| ())),
        }
    }
}

/// Wakes a collector thread to re-poll its in-flight operations.
struct CollectorUnparker(std::thread::Thread);

impl Wake for CollectorUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// What one collector accumulated.
struct Collected {
    ok: u64,
    errors: u64,
    first_error: Option<StoreError>,
    latency: LatencyHistogram,
}

/// Polls in-flight operations, timestamping each the moment it lands.
fn collect_loop(rx: &Receiver<(Instant, OpFut)>) -> Collected {
    let waker = Waker::from(Arc::new(CollectorUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut in_flight: Vec<(Instant, OpFut)> = Vec::new();
    let mut out = Collected {
        ok: 0,
        errors: 0,
        first_error: None,
        latency: LatencyHistogram::default(),
    };
    let mut issuer_gone = false;
    loop {
        loop {
            match rx.try_recv() {
                Ok(entry) => in_flight.push(entry),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    issuer_gone = true;
                    break;
                }
            }
        }
        let mut i = 0;
        while i < in_flight.len() {
            match in_flight[i].1.poll_done(&mut cx) {
                Poll::Ready(result) => {
                    let (scheduled, _) = in_flight.swap_remove(i);
                    let ns = u64::try_from(scheduled.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    out.latency.record_ns(ns);
                    match result {
                        Ok(()) => out.ok += 1,
                        Err(e) => {
                            out.errors += 1;
                            out.first_error.get_or_insert(e);
                        }
                    }
                }
                Poll::Pending => i += 1,
            }
        }
        if issuer_gone && in_flight.is_empty() {
            return out;
        }
        std::thread::park();
    }
}

/// One closed-loop client: issue, wait, record, repeat. With `batch >
/// 1`, each turn submits a whole batch in one transport round and waits
/// for all of it before the next.
fn closed_client<T: Transport>(client: &StoreClient<T>, spec: &LoadSpec, c: usize) -> Collected {
    let mut stream = OpStream::new(spec, c);
    let mut out = Collected {
        ok: 0,
        errors: 0,
        first_error: None,
        latency: LatencyHistogram::default(),
    };
    let batch = spec.batch.max(1);
    let record = |out: &mut Collected, ns: u64, result: Result<(), StoreError>| {
        out.latency.record_ns(ns);
        match result {
            Ok(()) => out.ok += 1,
            Err(e) => {
                out.errors += 1;
                out.first_error.get_or_insert(e);
            }
        }
    };
    if batch > 1 {
        let mut remaining = spec.ops_per_client;
        while remaining > 0 {
            let n = remaining.min(batch);
            remaining -= n;
            let ops: Vec<BatchOp> = (0..n).map(|_| stream.next_batch_op()).collect();
            let t = Instant::now();
            let results = join_all(client.submit_batch(ops));
            // The batch resolves as a unit, so every op in it shares the
            // issue → last-completion interval.
            let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for result in results {
                record(&mut out, ns, result.map(|_| ()));
            }
        }
        return out;
    }
    for _ in 0..spec.ops_per_client {
        let (key, write) = stream.next_op();
        let t = Instant::now();
        let result = match write {
            Some(v) => client.write_blocking(&key, v),
            None => client.read_blocking(&key).map(|_| ()),
        };
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        record(&mut out, ns, result);
    }
    out
}

/// One open-loop issuer: submit on schedule, hand futures to `tx`.
///
/// Client `c` owns the global arrival indices `i ≡ c (mod clients)`, so
/// the merged arrival process across issuers is uniform at the offered
/// rate. Latency is measured (by the collector) from the *scheduled*
/// instant: when the issuer falls behind, the backlog delay is charged
/// to the operations, not silently dropped.
///
/// With `batch > 1` the issuer accumulates `batch` consecutive arrivals
/// and submits them as one batch at the *last* one's scheduled instant;
/// each op still carries its own scheduled start, so the wait-for-batch
/// delay is charged to the earlier ops it actually delayed — batching is
/// never allowed to hide latency.
fn open_issuer<T: Transport>(
    client: &StoreClient<T>,
    spec: &LoadSpec,
    c: usize,
    rate: f64,
    start: Instant,
    tx: &Sender<(Instant, OpFut)>,
    collector: &std::thread::Thread,
) {
    let period = Duration::from_secs_f64(1.0 / rate.max(1e-9));
    let mut stream = OpStream::new(spec, c);
    let batch = spec.batch.max(1);
    let mut pending_ops: Vec<BatchOp> = Vec::with_capacity(batch);
    let mut pending_scheduled: Vec<Instant> = Vec::with_capacity(batch);
    for j in 0..spec.ops_per_client {
        let global_index = (j * spec.clients + c) as u32;
        let scheduled = start + period * global_index;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        if batch == 1 {
            let (key, write) = stream.next_op();
            let fut = match write {
                Some(v) => OpFut::Write(client.write(&key, v)),
                None => OpFut::Read(client.read(&key)),
            };
            if tx.send((scheduled, fut)).is_err() {
                return;
            }
            collector.unpark();
            continue;
        }
        pending_ops.push(stream.next_batch_op());
        pending_scheduled.push(scheduled);
        if pending_ops.len() == batch || j + 1 == spec.ops_per_client {
            let futs = client.submit_batch(std::mem::take(&mut pending_ops));
            for (sched, fut) in pending_scheduled.drain(..).zip(futs) {
                if tx.send((sched, OpFut::Batched(fut))).is_err() {
                    return;
                }
            }
            collector.unpark();
        }
    }
}

/// Runs one load profile against a client and reports what it measured.
///
/// # Panics
///
/// Panics if a collector thread cannot be spawned.
pub fn run_load<T: Transport>(client: &StoreClient<T>, spec: &LoadSpec) -> LoadReport {
    let start = Instant::now();
    let collected: Vec<Collected> = match spec.mode {
        LoadMode::Closed => std::thread::scope(|s| {
            let handles: Vec<_> = (0..spec.clients)
                .map(|c| {
                    let client = client.clone();
                    s.spawn(move || closed_client(&client, spec, c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        }),
        LoadMode::Open { rate } => std::thread::scope(|s| {
            let pairs: Vec<_> = (0..spec.clients)
                .map(|c| {
                    let (tx, rx) = std::sync::mpsc::channel::<(Instant, OpFut)>();
                    let collector = s.spawn(move || collect_loop(&rx));
                    let collector_thread = collector.thread().clone();
                    let client = client.clone();
                    let issuer = s.spawn(move || {
                        open_issuer(&client, spec, c, rate, start, &tx, &collector_thread);
                    });
                    (issuer, collector)
                })
                .collect();
            pairs
                .into_iter()
                .map(|(issuer, collector)| {
                    issuer.join().expect("issuer thread");
                    // The issuer dropped its sender on exit; unpark the
                    // collector so it notices and drains.
                    collector.thread().unpark();
                    collector.join().expect("collector thread")
                })
                .collect()
        }),
    };
    let elapsed = start.elapsed();
    let mut report = LoadReport {
        issued: spec.total_ops(),
        ok: 0,
        errors: 0,
        first_error: None,
        elapsed,
        latency: LatencyHistogram::default(),
    };
    for c in collected {
        report.ok += c.ok;
        report.errors += c.errors;
        if report.first_error.is_none() {
            report.first_error = c.first_error;
        }
        report.latency.merge(&c.latency);
    }
    report
}

/// Runs one load profile while a sampler thread scrapes the transport's
/// metrics ([`Transport::stats`]) every `interval`, coarsely observing
/// the run the way an external monitoring system would — over the same
/// wire the load travels on when the transport is TCP.
///
/// Returns the load report plus the scrape series, in sample order. One
/// final scrape is always taken *after* the run finishes, so the last
/// element reflects the quiesced store (modulo wire-time samples still
/// in flight on remote transports). Failed scrapes (e.g. a scrape
/// timing out under overload) are dropped from the series rather than
/// aborting the run.
///
/// # Panics
///
/// Panics if the sampler or a collector thread cannot be spawned.
pub fn run_load_scraped<T: Transport>(
    client: &StoreClient<T>,
    spec: &LoadSpec,
    interval: Duration,
) -> (LoadReport, Vec<StoreMetrics>) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut series = Vec::new();
            // audit:allow(atomics-relaxed) — sampler stop flag: publication of
            // the collected series is ordered by the thread join, not the flag;
            // relaxed staleness only costs one extra sample slice.
            while !stop.load(Ordering::Relaxed) {
                // Sleep in short slices so the sampler notices the end
                // of the run promptly even with a long interval.
                let deadline = Instant::now() + interval;
                // audit:allow(atomics-relaxed) — same stop flag; see above.
                while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // audit:allow(atomics-relaxed) — same stop flag; see above.
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(m) = client.stats() {
                    series.push(m);
                }
            }
            if let Ok(m) = client.stats() {
                series.push(m);
            }
            series
        });
        let report = run_load(client, spec);
        // audit:allow(atomics-relaxed) — same stop flag; the scope join
        // below is the synchronization point.
        stop.store(true, Ordering::Relaxed);
        let series = sampler.join().expect("sampler thread");
        (report, series)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolSpec, StoreConfig};
    use crate::store::Store;
    use rsb_registers::RegisterConfig;

    fn spec(mode: LoadMode) -> LoadSpec {
        LoadSpec {
            clients: 4,
            ops_per_client: 25,
            keys: 16,
            write_fraction: 0.5,
            value_len: 16,
            seed: 7,
            mode,
            batch: 1,
        }
    }

    #[test]
    fn closed_loop_over_loopback_completes_everything() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
        let report = run_load(&store.client(), &spec(LoadMode::Closed));
        assert_eq!(report.ok, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 100);
        store.shutdown();
    }

    #[test]
    fn open_loop_over_loopback_completes_everything() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
        let report = run_load(&store.client(), &spec(LoadMode::Open { rate: 5_000.0 }));
        assert_eq!(report.ok, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 100);
        // 100 ops at 5k/s is a 20 ms schedule; the run respected it.
        assert!(report.elapsed >= Duration::from_millis(19));
        store.shutdown();
    }

    #[test]
    fn scraped_run_samples_live_metrics() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
        let (report, series) = run_load_scraped(
            &store.client(),
            &spec(LoadMode::Open { rate: 5_000.0 }),
            Duration::from_millis(5),
        );
        assert_eq!(report.ok, 100);
        // The trailing post-run scrape is unconditional, so the series
        // is never empty and its last element shows the whole run.
        let last = series.last().expect("final scrape");
        let totals = last.totals();
        assert_eq!(totals.reads_completed + totals.writes_completed, 100);
        // Scrape counters are monotone along the series.
        for pair in series.windows(2) {
            assert!(pair[0].totals().completed() <= pair[1].totals().completed());
        }
        // Phase attribution covers every completed op.
        assert_eq!(last.queue_wait().count(), 100);
        assert_eq!(last.execute().count(), 100);
        assert_eq!(last.end_to_end_latency().count(), 100);
        store.shutdown();
    }

    #[test]
    fn batched_closed_loop_completes_everything() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
        // 25 ops per client at batch 8 → batches of 8, 8, 8, 1.
        let mut s = spec(LoadMode::Closed);
        s.batch = 8;
        let report = run_load(&store.client(), &s);
        assert_eq!(report.ok, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 100);
        store.shutdown();
    }

    #[test]
    fn batched_open_loop_completes_everything() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
        let mut s = spec(LoadMode::Open { rate: 5_000.0 });
        s.batch = 4;
        let report = run_load(&store.client(), &s);
        assert_eq!(report.ok, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 100);
        store.shutdown();
    }

    #[test]
    fn batched_and_per_op_runs_issue_identical_op_streams() {
        // Batching changes *how* ops are submitted, never *which* ops:
        // the same seed must produce the same keys and values.
        let s = spec(LoadMode::Closed);
        let mut a = OpStream::new(&s, 1);
        let mut b = OpStream::new(&s, 1);
        for _ in 0..20 {
            let (key, write) = a.next_op();
            match (b.next_batch_op(), write) {
                (BatchOp::Write(bk, bv), Some(v)) => {
                    assert_eq!((bk, bv), (key, v));
                }
                (BatchOp::Read(bk), None) => assert_eq!(bk, key),
                (got, want) => panic!("streams diverged: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn op_streams_are_deterministic() {
        let s = spec(LoadMode::Closed);
        let mut a = OpStream::new(&s, 2);
        let mut b = OpStream::new(&s, 2);
        for _ in 0..20 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
