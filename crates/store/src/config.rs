//! Store configuration: how many shards, and which register emulation
//! (with which parameters) backs each of them.

use rsb_registers::RegisterConfig;

/// Which register emulation a shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// ABD replication — strongly regular, wait-free, `O(fD)` storage.
    Abd,
    /// ABD with read write-back — atomic (linearizable).
    AbdAtomic,
    /// The Appendix-E safe register — constant `n·D/k` storage.
    Safe,
    /// The pure-coded baseline — `O(cD)` storage under concurrency.
    Coded,
    /// The Section-5 adaptive algorithm — coding that falls back to
    /// replication under concurrency.
    Adaptive,
}

impl ProtocolSpec {
    /// Short stable name, matching
    /// [`RegisterProtocol::name`](rsb_registers::RegisterProtocol::name).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolSpec::Abd => "abd",
            ProtocolSpec::AbdAtomic => "abd-atomic",
            ProtocolSpec::Safe => "safe",
            ProtocolSpec::Coded => "coded",
            ProtocolSpec::Adaptive => "adaptive",
        }
    }

    /// All specs, for sweeps.
    pub const ALL: [ProtocolSpec; 5] = [
        ProtocolSpec::Abd,
        ProtocolSpec::AbdAtomic,
        ProtocolSpec::Safe,
        ProtocolSpec::Coded,
        ProtocolSpec::Adaptive,
    ];
}

impl std::fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One shard's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// The register emulation backing every key on this shard.
    pub protocol: ProtocolSpec,
    /// The emulation's parameters (`n`, `f`, `k`, value length).
    pub register: RegisterConfig,
}

/// Errors validating a [`StoreConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreConfigError {
    /// The shard list is empty.
    NoShards,
    /// The driver batch size is zero.
    ZeroBatch,
}

impl std::fmt::Display for StoreConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreConfigError::NoShards => write!(f, "a store needs at least one shard"),
            StoreConfigError::ZeroBatch => write!(f, "driver batch size must be at least 1"),
        }
    }
}

impl std::error::Error for StoreConfigError {}

/// Full store configuration.
///
/// Shards may run *different* protocols (e.g. hot shards on ABD
/// replication, cold ones on the adaptive coder) — the keyspace partition
/// is purely hash-based, so the choice is a placement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Per-shard specifications; the keyspace is hashed over their count.
    pub shards: Vec<ShardSpec>,
    /// Maximum simulator events a driver executes per key per lock
    /// acquisition. Larger batches amortize locking; smaller batches
    /// reduce completion latency jitter.
    pub batch: usize,
}

impl StoreConfig {
    /// Default driver batch size.
    pub const DEFAULT_BATCH: usize = 64;

    /// A homogeneous store: `shard_count` shards all running `protocol`
    /// with `register` parameters.
    pub fn uniform(shard_count: usize, protocol: ProtocolSpec, register: RegisterConfig) -> Self {
        StoreConfig {
            shards: vec![ShardSpec { protocol, register }; shard_count],
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Overrides the driver batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects an empty shard list and a zero batch size.
    pub fn validate(&self) -> Result<(), StoreConfigError> {
        if self.shards.is_empty() {
            return Err(StoreConfigError::NoShards);
        }
        if self.batch == 0 {
            return Err(StoreConfigError::ZeroBatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_and_validates() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let cfg = StoreConfig::uniform(8, ProtocolSpec::Abd, reg);
        assert_eq!(cfg.shards.len(), 8);
        assert!(cfg.validate().is_ok());
        assert!(StoreConfig {
            shards: vec![],
            batch: 1
        }
        .validate()
        .is_err());
        assert!(cfg.with_batch(0).validate().is_err());
    }

    #[test]
    fn spec_names_are_stable() {
        let names: Vec<_> = ProtocolSpec::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["abd", "abd-atomic", "safe", "coded", "adaptive"]);
    }
}
