//! Store configuration: how many shards, and which register emulation
//! (with which parameters) backs each of them.

use rsb_registers::RegisterConfig;

/// Which register emulation a shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// ABD replication — strongly regular, wait-free, `O(fD)` storage.
    Abd,
    /// ABD with read write-back — atomic (linearizable).
    AbdAtomic,
    /// The Appendix-E safe register — constant `n·D/k` storage.
    Safe,
    /// The pure-coded baseline — `O(cD)` storage under concurrency.
    Coded,
    /// The Section-5 adaptive algorithm — coding that falls back to
    /// replication under concurrency.
    Adaptive,
}

impl ProtocolSpec {
    /// Short stable name, matching
    /// [`RegisterProtocol::name`](rsb_registers::RegisterProtocol::name).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolSpec::Abd => "abd",
            ProtocolSpec::AbdAtomic => "abd-atomic",
            ProtocolSpec::Safe => "safe",
            ProtocolSpec::Coded => "coded",
            ProtocolSpec::Adaptive => "adaptive",
        }
    }

    /// All specs, for sweeps.
    pub const ALL: [ProtocolSpec; 5] = [
        ProtocolSpec::Abd,
        ProtocolSpec::AbdAtomic,
        ProtocolSpec::Safe,
        ProtocolSpec::Coded,
        ProtocolSpec::Adaptive,
    ];
}

impl std::fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One shard's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// The register emulation backing every key on this shard.
    pub protocol: ProtocolSpec,
    /// The emulation's parameters (`n`, `f`, `k`, value length).
    pub register: RegisterConfig,
}

/// How a key's operation history is bounded over the register's lifetime.
///
/// The paper bounds the *storage* of a reliable register; the runtime
/// additionally accumulates per-key `OpRecord` history for the
/// consistency checkers, which grows without bound under sustained
/// traffic. A policy compacts settled records while keeping the frontier
/// writes a future read may still return, so truncated histories remain
/// acceptable to the regularity / atomicity checkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryPolicy {
    /// Keep every record (the pre-compaction behaviour; default).
    Unbounded,
    /// Compact a key's history whenever it holds more than `N` live
    /// records — bounded memory under sustained traffic.
    TruncateAfter(usize),
    /// Compact a key's history whenever the register goes quiescent
    /// (no in-flight work): between bursts only the frontier survives.
    TruncateOnQuiescence,
}

/// How (and whether) the store reclaims memory from cold keys on its own.
///
/// [`Store::evict_quiescent`](crate::Store::evict_quiescent) always
/// works; a non-manual policy additionally makes the *driver pool* run
/// the eviction machinery between batches — idle drivers sweep their
/// shard, and an occupancy trigger fires on a single atomic comparison —
/// so the paper's "bounded space" becomes a property the system
/// maintains, at zero dedicated threads and without ever blocking a
/// ready key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Reclamation happens only when the caller asks for it (default —
    /// the pre-governor behaviour).
    Manual,
    /// An idle driver evicts keys that have been quiescent for at least
    /// this many shard *ticks* (a tick is one submission or one driver
    /// step batch on the shard — logical time, so tests and benches stay
    /// deterministic-ish and wall-clock-free).
    IdleAfter(u64),
    /// When a shard's live occupancy exceeds `bits`, idle-or-between-
    /// batches drivers evict quiescent keys coldest-first until the
    /// shard is at or below `low_watermark` bits. Both bounds are
    /// per-shard (divide a store-wide budget by the shard count).
    OccupancyAbove {
        /// High watermark: live bits above this arm the trigger.
        bits: u64,
        /// Low watermark the sweep reclaims down to (`≤ bits`).
        low_watermark: u64,
    },
}

/// Where (and how) [`Store::serve`](crate::Store::serve) exposes the
/// store over TCP.
///
/// Validated by [`StoreConfig::validate`] with the same
/// reject-at-start discipline as the eviction section: a bad address or
/// a zero connection bound never gets as far as a bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenSpec {
    /// The address to bind, e.g. `"127.0.0.1:7400"` (use port `0` for an
    /// ephemeral port, reported by
    /// [`StoreServer::local_addr`](crate::StoreServer::local_addr)).
    pub addr: String,
    /// Maximum concurrent client connections; further connects are
    /// answered with a `Rejected` error frame and closed.
    pub backlog: usize,
    /// Whether to set `TCP_NODELAY` on accepted connections (default
    /// true — the protocol is request/response, Nagle only adds latency).
    pub nodelay: bool,
}

impl ListenSpec {
    /// Default connection bound.
    pub const DEFAULT_BACKLOG: usize = 64;

    /// A spec for `addr` with the default backlog and `TCP_NODELAY` on.
    pub fn new(addr: impl Into<String>) -> Self {
        ListenSpec {
            addr: addr.into(),
            backlog: Self::DEFAULT_BACKLOG,
            nodelay: true,
        }
    }

    /// Overrides the concurrent-connection bound.
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog;
        self
    }
}

/// Errors validating a [`StoreConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreConfigError {
    /// The shard list is empty.
    NoShards,
    /// The driver batch size is zero.
    ZeroBatch,
    /// A truncate-after-N history bound of zero records.
    ZeroHistoryBound,
    /// An idle-after eviction threshold of zero ticks.
    ZeroIdleThreshold,
    /// An occupancy eviction policy whose low watermark exceeds its
    /// high watermark.
    WatermarkAboveBound,
    /// A listen section with a zero connection bound.
    ZeroBacklog,
    /// A listen address that does not parse as a socket address.
    BadListenAddr(String),
    /// [`Store::serve`](crate::Store::serve) was called on a
    /// configuration with no listen section.
    MissingListen,
    /// A flight-recorder capacity of zero events.
    ZeroRecorderCapacity,
    /// A wall-clock idle-aging duration of zero.
    ZeroIdleWallClock,
    /// Wall-clock idle aging configured without an
    /// [`EvictionPolicy::IdleAfter`] policy to age against.
    IdleWallClockWithoutIdleAfter,
}

impl std::fmt::Display for StoreConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreConfigError::NoShards => write!(f, "a store needs at least one shard"),
            StoreConfigError::ZeroBatch => write!(f, "driver batch size must be at least 1"),
            StoreConfigError::ZeroHistoryBound => {
                write!(f, "truncate-after-N needs a bound of at least 1 record")
            }
            StoreConfigError::ZeroIdleThreshold => {
                write!(
                    f,
                    "idle-after eviction needs a threshold of at least 1 tick"
                )
            }
            StoreConfigError::WatermarkAboveBound => {
                write!(
                    f,
                    "occupancy eviction needs low_watermark <= bits (the high watermark)"
                )
            }
            StoreConfigError::ZeroBacklog => {
                write!(
                    f,
                    "a listen section needs a backlog of at least 1 connection"
                )
            }
            StoreConfigError::BadListenAddr(addr) => {
                write!(f, "listen address {addr:?} is not a valid socket address")
            }
            StoreConfigError::MissingListen => {
                write!(
                    f,
                    "serving requires a listen section (StoreConfig::with_listen)"
                )
            }
            StoreConfigError::ZeroRecorderCapacity => {
                write!(f, "the flight recorder needs capacity for at least 1 event")
            }
            StoreConfigError::ZeroIdleWallClock => {
                write!(f, "wall-clock idle aging needs a non-zero duration")
            }
            StoreConfigError::IdleWallClockWithoutIdleAfter => {
                write!(
                    f,
                    "wall-clock idle aging requires the IdleAfter eviction policy"
                )
            }
        }
    }
}

impl std::error::Error for StoreConfigError {}

/// Full store configuration.
///
/// Shards may run *different* protocols (e.g. hot shards on ABD
/// replication, cold ones on the adaptive coder) — the keyspace partition
/// is purely hash-based, so the choice is a placement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Per-shard specifications; the keyspace is hashed over their count.
    pub shards: Vec<ShardSpec>,
    /// Maximum simulator events a driver executes per key per ready-queue
    /// pop. Larger batches amortize queue traffic; smaller batches reduce
    /// completion latency jitter.
    pub batch: usize,
    /// Per-key operation-history bound.
    pub history: HistoryPolicy,
    /// Whether an idle shard driver steals ready keys from loaded
    /// neighbors (flattens zipfian skew; on by default).
    pub work_stealing: bool,
    /// How the driver pool reclaims memory from cold keys.
    pub eviction: EvictionPolicy,
    /// The TCP service surface, if any. `None` (the default) means
    /// in-process only; [`Store::serve`](crate::Store::serve) requires
    /// `Some`.
    pub listen: Option<ListenSpec>,
    /// Capacity, in events, of the store's flight recorder
    /// (overwrite-oldest; fixed memory of ~16 bytes per slot).
    pub recorder_capacity: usize,
    /// Optional wall-clock aging for [`EvictionPolicy::IdleAfter`]: a key
    /// untouched for this long is eligible for the idle sweep even when
    /// the shard's logical tick counter has not advanced (ticks only move
    /// with traffic, so a fully idle store never ages keys by ticks
    /// alone). Off by default; drivers park with a bounded timeout while
    /// this is set so the sweep runs on an otherwise silent store.
    pub idle_wall_clock: Option<std::time::Duration>,
}

impl StoreConfig {
    /// Default driver batch size.
    pub const DEFAULT_BATCH: usize = 64;

    /// Default flight-recorder window.
    pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

    /// A homogeneous store: `shard_count` shards all running `protocol`
    /// with `register` parameters.
    pub fn uniform(shard_count: usize, protocol: ProtocolSpec, register: RegisterConfig) -> Self {
        StoreConfig {
            shards: vec![ShardSpec { protocol, register }; shard_count],
            batch: Self::DEFAULT_BATCH,
            history: HistoryPolicy::Unbounded,
            work_stealing: true,
            eviction: EvictionPolicy::Manual,
            listen: None,
            recorder_capacity: Self::DEFAULT_RECORDER_CAPACITY,
            idle_wall_clock: None,
        }
    }

    /// Overrides the driver batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the per-key history policy.
    pub fn with_history(mut self, history: HistoryPolicy) -> Self {
        self.history = history;
        self
    }

    /// Enables or disables work-stealing across shard drivers.
    pub fn with_work_stealing(mut self, work_stealing: bool) -> Self {
        self.work_stealing = work_stealing;
        self
    }

    /// Overrides the eviction policy the driver pool governs memory by.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Adds a TCP listen section, enabling
    /// [`Store::serve`](crate::Store::serve).
    pub fn with_listen(mut self, listen: ListenSpec) -> Self {
        self.listen = Some(listen);
        self
    }

    /// Overrides the flight recorder's event window (tests shrink it to
    /// exercise wrap-around; long-lived servers may want more context).
    pub fn with_recorder_capacity(mut self, recorder_capacity: usize) -> Self {
        self.recorder_capacity = recorder_capacity;
        self
    }

    /// Enables wall-clock aging for the idle-eviction sweep: keys
    /// untouched for `age` become sweep-eligible even on a store whose
    /// logical ticks are frozen by the absence of traffic. Requires an
    /// [`EvictionPolicy::IdleAfter`] policy (enforced by
    /// [`StoreConfig::validate`]).
    pub fn with_idle_wall_clock(mut self, age: std::time::Duration) -> Self {
        self.idle_wall_clock = Some(age);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects an empty shard list, a zero batch size, a zero
    /// truncate-after-N bound, a zero idle-eviction threshold, an
    /// occupancy policy whose low watermark exceeds its high watermark,
    /// a listen section with a zero backlog or an unparseable address,
    /// and a zero-capacity flight recorder.
    pub fn validate(&self) -> Result<(), StoreConfigError> {
        if self.shards.is_empty() {
            return Err(StoreConfigError::NoShards);
        }
        if self.batch == 0 {
            return Err(StoreConfigError::ZeroBatch);
        }
        if self.history == HistoryPolicy::TruncateAfter(0) {
            return Err(StoreConfigError::ZeroHistoryBound);
        }
        match self.eviction {
            EvictionPolicy::IdleAfter(0) => return Err(StoreConfigError::ZeroIdleThreshold),
            EvictionPolicy::OccupancyAbove {
                bits,
                low_watermark,
            } if low_watermark > bits => return Err(StoreConfigError::WatermarkAboveBound),
            _ => {}
        }
        if let Some(listen) = &self.listen {
            if listen.backlog == 0 {
                return Err(StoreConfigError::ZeroBacklog);
            }
            if listen.addr.parse::<std::net::SocketAddr>().is_err() {
                return Err(StoreConfigError::BadListenAddr(listen.addr.clone()));
            }
        }
        if self.recorder_capacity == 0 {
            return Err(StoreConfigError::ZeroRecorderCapacity);
        }
        if let Some(age) = self.idle_wall_clock {
            if age.is_zero() {
                return Err(StoreConfigError::ZeroIdleWallClock);
            }
            if !matches!(self.eviction, EvictionPolicy::IdleAfter(_)) {
                return Err(StoreConfigError::IdleWallClockWithoutIdleAfter);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_and_validates() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let cfg = StoreConfig::uniform(8, ProtocolSpec::Abd, reg);
        assert_eq!(cfg.shards.len(), 8);
        assert!(cfg.validate().is_ok());
        let mut empty = cfg.clone();
        empty.shards.clear();
        assert_eq!(empty.validate(), Err(StoreConfigError::NoShards));
        assert_eq!(
            cfg.clone().with_batch(0).validate(),
            Err(StoreConfigError::ZeroBatch)
        );
        assert_eq!(
            cfg.clone()
                .with_history(HistoryPolicy::TruncateAfter(0))
                .validate(),
            Err(StoreConfigError::ZeroHistoryBound)
        );
        assert_eq!(
            cfg.clone().with_recorder_capacity(0).validate(),
            Err(StoreConfigError::ZeroRecorderCapacity)
        );
        assert!(cfg
            .with_history(HistoryPolicy::TruncateOnQuiescence)
            .with_work_stealing(false)
            .validate()
            .is_ok());
    }

    #[test]
    fn eviction_policies_validate() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let cfg = StoreConfig::uniform(2, ProtocolSpec::Abd, reg);
        assert!(cfg
            .clone()
            .with_eviction(EvictionPolicy::IdleAfter(8))
            .validate()
            .is_ok());
        assert_eq!(
            cfg.clone()
                .with_eviction(EvictionPolicy::IdleAfter(0))
                .validate(),
            Err(StoreConfigError::ZeroIdleThreshold)
        );
        assert!(cfg
            .clone()
            .with_eviction(EvictionPolicy::OccupancyAbove {
                bits: 4096,
                low_watermark: 2048,
            })
            .validate()
            .is_ok());
        assert_eq!(
            cfg.with_eviction(EvictionPolicy::OccupancyAbove {
                bits: 1024,
                low_watermark: 2048,
            })
            .validate(),
            Err(StoreConfigError::WatermarkAboveBound)
        );
    }

    #[test]
    fn idle_wall_clock_validates() {
        use std::time::Duration;
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let cfg = StoreConfig::uniform(2, ProtocolSpec::Abd, reg);
        assert!(cfg
            .clone()
            .with_eviction(EvictionPolicy::IdleAfter(4))
            .with_idle_wall_clock(Duration::from_millis(50))
            .validate()
            .is_ok());
        assert_eq!(
            cfg.clone()
                .with_eviction(EvictionPolicy::IdleAfter(4))
                .with_idle_wall_clock(Duration::ZERO)
                .validate(),
            Err(StoreConfigError::ZeroIdleWallClock)
        );
        assert_eq!(
            cfg.with_idle_wall_clock(Duration::from_millis(50))
                .validate(),
            Err(StoreConfigError::IdleWallClockWithoutIdleAfter),
            "wall-clock aging without IdleAfter has nothing to age against"
        );
    }

    #[test]
    fn listen_sections_validate() {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let cfg = StoreConfig::uniform(2, ProtocolSpec::Abd, reg);
        assert!(cfg.validate().is_ok(), "no listen section is fine");
        assert!(cfg
            .clone()
            .with_listen(ListenSpec::new("127.0.0.1:0"))
            .validate()
            .is_ok());
        assert_eq!(
            cfg.clone()
                .with_listen(ListenSpec::new("127.0.0.1:0").with_backlog(0))
                .validate(),
            Err(StoreConfigError::ZeroBacklog)
        );
        assert_eq!(
            cfg.with_listen(ListenSpec::new("not-an-addr")).validate(),
            Err(StoreConfigError::BadListenAddr("not-an-addr".into()))
        );
    }

    #[test]
    fn spec_names_are_stable() {
        let names: Vec<_> = ProtocolSpec::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["abd", "abd-atomic", "safe", "coded", "adaptive"]);
    }
}
