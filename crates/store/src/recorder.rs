//! Flight recorder: a lock-free, fixed-capacity ring of structured
//! events, cheap enough to leave on in production.
//!
//! Every noteworthy store event (submit, steal, evict, rematerialize,
//! compaction, wire decode error, connection open/close, rejection) is
//! stamped with a monotonically-increasing sequence number and packed
//! into one atomic word; when the ring wraps, the oldest events are
//! overwritten. [`FlightRecorder::dump`] snapshots the surviving window
//! without stopping writers — the post-incident "what just happened"
//! view that per-shard counters cannot give.

use crate::mcsync::{AtomicU64, Ordering};

/// Widest detail payload an event word can carry (40 bits); larger
/// values are clamped on record.
const DETAIL_BITS: u32 = 40;
const DETAIL_MASK: u64 = (1 << DETAIL_BITS) - 1;
/// Shard field sentinel for store-wide events (connection churn, wire
/// decode errors) that have no home shard.
const NO_SHARD: u64 = u16::MAX as u64;
/// Per-slot sequence-word sentinel: a writer owns the slot and its
/// payload is mid-write. Unreachable as a published value (`seq + 1`)
/// until 2⁶⁴−1 events have been recorded.
const CLAIMED: u64 = u64::MAX;

/// What happened, for one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A read was accepted by the submit path.
    SubmitRead,
    /// A write was accepted by the submit path; detail is the payload
    /// length in bytes.
    SubmitWrite,
    /// A foreign driver executed one of this shard's ready keys; the
    /// event's shard is the victim whose key was stolen.
    Steal,
    /// A key was evicted by an explicit
    /// [`Store::evict_quiescent`](crate::Store::evict_quiescent) call;
    /// detail is the snapshot size in bits.
    EvictManual,
    /// A key was evicted by the governor's idle sweep; detail is the
    /// snapshot size in bits.
    EvictIdle,
    /// A key was evicted by the governor's occupancy trigger; detail is
    /// the snapshot size in bits.
    EvictOccupancy,
    /// An operation on an evicted key rebuilt its live simulation.
    Rematerialize,
    /// History compaction dropped records; detail is how many.
    Compaction,
    /// A connection's frame stream failed to decode; the connection was
    /// closed.
    DecodeError,
    /// A TCP connection completed its handshake.
    ConnOpen,
    /// A TCP connection closed (cleanly or not).
    ConnClose,
    /// A submission was rejected (simulation refusal or server at
    /// connection capacity).
    Rejected,
    /// A foreign driver drained several of this shard's ready keys in
    /// one `pop_half` pass; the event's shard is the victim and detail
    /// is how many keys the batch carried.
    StealBatch,
}

impl FlightEventKind {
    fn from_code(code: u8) -> Option<FlightEventKind> {
        Some(match code {
            0 => FlightEventKind::SubmitRead,
            1 => FlightEventKind::SubmitWrite,
            2 => FlightEventKind::Steal,
            3 => FlightEventKind::EvictManual,
            4 => FlightEventKind::EvictIdle,
            5 => FlightEventKind::EvictOccupancy,
            6 => FlightEventKind::Rematerialize,
            7 => FlightEventKind::Compaction,
            8 => FlightEventKind::DecodeError,
            9 => FlightEventKind::ConnOpen,
            10 => FlightEventKind::ConnClose,
            11 => FlightEventKind::Rejected,
            12 => FlightEventKind::StealBatch,
            _ => return None,
        })
    }

    fn code(self) -> u8 {
        match self {
            FlightEventKind::SubmitRead => 0,
            FlightEventKind::SubmitWrite => 1,
            FlightEventKind::Steal => 2,
            FlightEventKind::EvictManual => 3,
            FlightEventKind::EvictIdle => 4,
            FlightEventKind::EvictOccupancy => 5,
            FlightEventKind::Rematerialize => 6,
            FlightEventKind::Compaction => 7,
            FlightEventKind::DecodeError => 8,
            FlightEventKind::ConnOpen => 9,
            FlightEventKind::ConnClose => 10,
            FlightEventKind::Rejected => 11,
            FlightEventKind::StealBatch => 12,
        }
    }

    /// Short fixed label for dump tables.
    pub fn label(self) -> &'static str {
        match self {
            FlightEventKind::SubmitRead => "submit-read",
            FlightEventKind::SubmitWrite => "submit-write",
            FlightEventKind::Steal => "steal",
            FlightEventKind::EvictManual => "evict-manual",
            FlightEventKind::EvictIdle => "evict-idle",
            FlightEventKind::EvictOccupancy => "evict-occupancy",
            FlightEventKind::Rematerialize => "rematerialize",
            FlightEventKind::Compaction => "compaction",
            FlightEventKind::DecodeError => "decode-error",
            FlightEventKind::ConnOpen => "conn-open",
            FlightEventKind::ConnClose => "conn-close",
            FlightEventKind::Rejected => "rejected",
            FlightEventKind::StealBatch => "steal-batch",
        }
    }
}

/// One recovered ring entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number, assigned at record time. A dump's
    /// sequence numbers are gapless over the surviving window except for
    /// events dropped under same-slot write contention.
    pub seq: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Home shard of the event, or `None` for store-wide events
    /// (connection churn, decode errors, capacity rejections).
    pub shard: Option<usize>,
    /// Kind-specific payload (bytes, bits, dropped records, victim
    /// shard), clamped to 40 bits.
    pub detail: u64,
}

/// Fixed-capacity, overwrite-oldest ring of [`FlightEvent`]s.
///
/// Recording is one relaxed fetch-add, one acquire/release swap, and
/// two release stores — no locks, no allocation — so it stays on in
/// production and inside benches. A slot is claimed (sequence word
/// swapped to [`CLAIMED`]), its payload written, then published
/// (sequence word set); [`Self::dump`] re-reads the sequence word
/// around the payload and drops entries it caught mid-write, so a torn
/// or misattributed pair is never returned. A writer whose swap finds
/// the slot already claimed drops its event instead of racing the
/// owner. Under extreme same-slot contention a dump may therefore miss
/// an event — the recorder trades that sliver of completeness for a
/// wait-free hot path.
#[derive(Debug)]
pub struct FlightRecorder {
    head: AtomicU64,
    /// Per-slot published sequence number plus one; 0 means "never
    /// written", [`CLAIMED`] means a writer owns the slot.
    seqs: Vec<AtomicU64>,
    /// Per-slot packed payload: kind (8 bits) | shard (16 bits,
    /// `NO_SHARD` sentinel) | detail (40 bits).
    words: Vec<AtomicU64>,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` most-recent events
    /// (`capacity` ≥ 1; enforced by config validation upstream, clamped
    /// here for safety). Public so the model-checking harness in
    /// `crates/mc` can drive a standalone ring.
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            head: AtomicU64::new(0),
            seqs: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            words: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.seqs.len()
    }

    /// Total events ever recorded (not just the surviving window).
    pub fn recorded(&self) -> u64 {
        // audit:allow(atomics-relaxed) — a monitoring total. Any reader that
        // observed an event via `dump`'s acquire loads already
        // happens-after that event's `fetch_add`, so even a relaxed load
        // here returns a count covering it; nothing else pairs with head.
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event; the hot-path entry point. Returns the event's
    /// sequence number (callers on the hot path ignore it; the
    /// model-checking harness uses it to pin dumped payloads to the
    /// exact `record` call that claimed each sequence).
    ///
    /// The slot claim is a `swap`, not a plain store: two writers can
    /// race for one ring slot once the sequence space wraps, and with a
    /// store-claim a delayed writer could publish its sequence number
    /// over the other writer's payload — a mixed pair `dump` cannot
    /// detect (found by the `crates/mc` interleaving harness). The loser
    /// of the swap drops its event instead: under same-slot contention
    /// the ring may miss an event, but never misattributes one.
    pub fn record(&self, kind: FlightEventKind, shard: Option<usize>, detail: u64) -> u64 {
        // audit:allow(atomics-relaxed) — sequence allocation only: the RMW
        // is atomic regardless of ordering, and payload publication is
        // ordered by the per-slot release stores below, not by head.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.seqs.len() as u64) as usize;
        let shard_field = match shard {
            Some(s) => (s as u64).min(NO_SHARD - 1),
            None => NO_SHARD,
        };
        let word =
            (u64::from(kind.code()) << 56) | (shard_field << DETAIL_BITS) | (detail & DETAIL_MASK);
        // Claim, write payload, publish — dump() rejects the slot while
        // the sequence word is zero/claimed or changes across its
        // payload read.
        if self.seqs[idx].swap(CLAIMED, Ordering::AcqRel) == CLAIMED {
            // Another writer owns this slot mid-write; writing anyway
            // could pair its sequence number with our payload.
            return seq;
        }
        self.words[idx].store(word, Ordering::Release);
        self.seqs[idx].store(seq + 1, Ordering::Release);
        seq
    }

    /// Snapshots the surviving window, oldest first, without stopping
    /// writers. Entries caught mid-overwrite are skipped; the returned
    /// sequence numbers are strictly increasing.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut events = Vec::with_capacity(self.seqs.len());
        for idx in 0..self.seqs.len() {
            let before = self.seqs[idx].load(Ordering::Acquire);
            if before == 0 || before == CLAIMED {
                continue;
            }
            let word = self.words[idx].load(Ordering::Acquire);
            let after = self.seqs[idx].load(Ordering::Acquire);
            if before != after {
                continue; // torn: a writer republished mid-read
            }
            let code = (word >> 56) as u8;
            let Some(kind) = FlightEventKind::from_code(code) else {
                continue;
            };
            let shard_field = (word >> DETAIL_BITS) & NO_SHARD;
            events.push(FlightEvent {
                seq: before - 1,
                kind,
                shard: (shard_field != NO_SHARD).then_some(shard_field as usize),
                detail: word & DETAIL_MASK,
            });
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_gapless_and_ordered_before_wrap() {
        let r = FlightRecorder::new(64);
        for i in 0..40u64 {
            r.record(FlightEventKind::SubmitRead, Some(3), i);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 40);
        for (i, e) in dump.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, FlightEventKind::SubmitRead);
            assert_eq!(e.shard, Some(3));
            assert_eq!(e.detail, i as u64);
        }
        assert_eq!(r.recorded(), 40);
    }

    #[test]
    fn ring_overwrites_oldest_and_stays_gapless() {
        let r = FlightRecorder::new(8);
        for i in 0..27u64 {
            r.record(FlightEventKind::SubmitWrite, Some(0), i);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 8, "window is the ring capacity");
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (19..27).collect::<Vec<u64>>());
        assert_eq!(r.recorded(), 27);
    }

    #[test]
    fn store_wide_events_have_no_shard_and_details_clamp() {
        let r = FlightRecorder::new(4);
        r.record(FlightEventKind::ConnOpen, None, 0);
        r.record(FlightEventKind::Compaction, Some(1), u64::MAX);
        let dump = r.dump();
        assert_eq!(dump[0].shard, None);
        assert_eq!(dump[0].kind, FlightEventKind::ConnOpen);
        assert_eq!(dump[1].detail, DETAIL_MASK, "detail clamps to 40 bits");
        assert_eq!(dump[1].shard, Some(1));
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=12u8 {
            let kind = FlightEventKind::from_code(code).expect("known code");
            assert_eq!(kind.code(), code);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(FlightEventKind::from_code(13), None);
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let r = std::sync::Arc::new(FlightRecorder::new(32));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        r.record(FlightEventKind::Steal, Some(t), i);
                        if i % 64 == 0 {
                            // Dumps interleave with writers; every entry
                            // returned must be internally consistent.
                            for e in r.dump() {
                                assert_eq!(e.kind, FlightEventKind::Steal);
                                assert!(e.shard.is_some_and(|s| s < 4));
                                assert!(e.detail < 2000);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 8000);
        let final_dump = r.dump();
        assert!(final_dump.len() <= 32);
        let seqs: Vec<u64> = final_dump.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted, "strictly increasing sequence numbers");
    }
}
