//! Hand-rolled, executor-agnostic operation futures.
//!
//! [`ReadFuture`] / [`WriteFuture`] wrap the driver-filled
//! [`CompletionSlot`](rsb_registers::CompletionSlot)s of
//! `rsb_registers::threaded`. They implement [`Future`] so any executor
//! can await them, and each also offers a blocking `wait()` that parks on
//! the slot's condvar — the tree is offline-vendored, so no tokio (or any
//! runtime) is required anywhere. [`block_on`] is a minimal thread-parking
//! executor for contexts with no runtime at all.

use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::OpResult;
use rsb_registers::CompletionSlot;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Shared core of the two operation futures: either a live completion
/// slot, or an error determined at submission time (e.g. the store was
/// already shut down) delivered on first poll.
#[derive(Debug)]
pub(crate) enum OpFuture {
    /// Submitted; the driver will fill the slot.
    Slot(Arc<CompletionSlot>),
    /// Failed at submission; `None` after the error has been taken.
    Failed(Option<StoreError>),
}

impl OpFuture {
    fn poll_result(&mut self, cx: &mut Context<'_>) -> Poll<Result<OpResult, StoreError>> {
        match self {
            OpFuture::Slot(slot) => slot.poll_outcome(cx).map_err(StoreError::from),
            OpFuture::Failed(err) => Poll::Ready(Err(err
                .take()
                .expect("operation future polled after completion"))),
        }
    }

    fn wait(mut self) -> Result<OpResult, StoreError> {
        match &mut self {
            OpFuture::Slot(slot) => slot.wait().map_err(StoreError::from),
            OpFuture::Failed(err) => Err(err.take().expect("freshly constructed")),
        }
    }
}

/// The future of a `read(key)`; resolves to the value read.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled or waited on"]
pub struct ReadFuture {
    pub(crate) inner: OpFuture,
}

impl ReadFuture {
    /// Blocking facade: parks the calling thread until the read returns.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down or the submission was rejected.
    pub fn wait(self) -> Result<Value, StoreError> {
        self.inner.wait().map(into_read)
    }
}

impl Future for ReadFuture {
    type Output = Result<Value, StoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut()
            .inner
            .poll_result(cx)
            .map(|r| r.map(into_read))
    }
}

/// The future of a `write(key, v)`; resolves once the write is acked.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled or waited on"]
pub struct WriteFuture {
    pub(crate) inner: OpFuture,
}

impl WriteFuture {
    /// Blocking facade: parks the calling thread until the write is acked.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down or the submission was rejected.
    pub fn wait(self) -> Result<(), StoreError> {
        self.inner.wait().map(|_| ())
    }
}

impl Future for WriteFuture {
    type Output = Result<(), StoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().inner.poll_result(cx).map(|r| r.map(|_| ()))
    }
}

fn into_read(result: OpResult) -> Value {
    match result {
        OpResult::Read(v) => v,
        OpResult::Write => unreachable!("read future resolved with a write ack"),
    }
}

/// Wakes a parked thread (the whole executor state of [`block_on`]).
struct ThreadUnparker(std::thread::Thread);

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives any future to completion on the current thread, with no async
/// runtime: the waker unparks this thread, the loop re-polls.
///
/// Spurious unparks are handled by re-polling; [`Future::poll`] contract
/// (`wake` called when progress is possible) guarantees termination for
/// the store's slot-backed futures.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::from(Arc::new(ThreadUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Resolves a batch of futures concurrently on the current thread and
/// returns their outputs in order — a tiny `join_all` so examples and
/// load generators can keep many operations in flight without a runtime.
pub fn join_all<F: Future + Unpin>(futs: Vec<F>) -> Vec<F::Output> {
    let waker = Waker::from(Arc::new(ThreadUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut pending: Vec<Option<F>> = futs.into_iter().map(Some).collect();
    let mut results: Vec<Option<F::Output>> = pending.iter().map(|_| None).collect();
    loop {
        let mut all_done = true;
        for (slot, result) in pending.iter_mut().zip(results.iter_mut()) {
            if let Some(fut) = slot {
                match Pin::new(fut).poll(&mut cx) {
                    Poll::Ready(out) => {
                        *result = Some(out);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            return results
                .into_iter()
                .map(|r| r.expect("all futures resolved"))
                .collect();
        }
        std::thread::park();
    }
}
