//! Hand-rolled, executor-agnostic operation futures.
//!
//! [`ReadFuture`] / [`WriteFuture`] wrap the [`OpTicket`] a
//! [`Transport`](crate::Transport) returned for the submission —
//! a driver-filled [`CompletionSlot`](rsb_registers::CompletionSlot) on
//! the loopback path, a TCP-reader-filled cell on the wire. They
//! implement [`Future`] so any executor can await them, and each also
//! offers a blocking `wait()` that parks on the underlying condvar — the
//! tree is offline-vendored, so no tokio (or any runtime) is required
//! anywhere. [`block_on`] is a minimal thread-parking executor for
//! contexts with no runtime at all.

use crate::net::OpTicket;
use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::OpResult;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// The future of a `read(key)`; resolves to the value read.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled or waited on"]
pub struct ReadFuture {
    pub(crate) ticket: OpTicket,
}

impl ReadFuture {
    /// Blocking facade: parks the calling thread until the read returns.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down, the submission was rejected, or the
    /// transport failed.
    pub fn wait(self) -> Result<Value, StoreError> {
        self.ticket.wait().and_then(into_read)
    }
}

impl Future for ReadFuture {
    type Output = Result<Value, StoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut()
            .ticket
            .poll_result(cx)
            .map(|r| r.and_then(into_read))
    }
}

/// The future of a `write(key, v)`; resolves once the write is acked.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled or waited on"]
pub struct WriteFuture {
    pub(crate) ticket: OpTicket,
}

impl WriteFuture {
    /// Blocking facade: parks the calling thread until the write is acked.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down, the submission was rejected, or the
    /// transport failed.
    pub fn wait(self) -> Result<(), StoreError> {
        self.ticket.wait().map(|_| ())
    }
}

impl Future for WriteFuture {
    type Output = Result<(), StoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().ticket.poll_result(cx).map(|r| r.map(|_| ()))
    }
}

/// The future of one operation of a batch
/// ([`StoreClient::submit_batch`](crate::StoreClient::submit_batch)):
/// resolves to the raw [`OpResult`] — [`OpResult::Read`] with the value
/// for reads, [`OpResult::Write`] for acked writes — because a batch
/// mixes both kinds and the caller matches on what comes back.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled or waited on"]
pub struct OpFuture {
    pub(crate) ticket: OpTicket,
}

impl OpFuture {
    /// Blocking facade: parks the calling thread until the operation
    /// resolves.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down, the submission was rejected, or the
    /// transport failed.
    pub fn wait(self) -> Result<OpResult, StoreError> {
        self.ticket.wait()
    }
}

impl Future for OpFuture {
    type Output = Result<OpResult, StoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().ticket.poll_result(cx)
    }
}

/// A write ack delivered to a read is unreachable on loopback (drivers
/// fill the slot the read registered) but *possible* over a buggy or
/// hostile wire — so it is an error, never a panic, on the client path.
fn into_read(result: OpResult) -> Result<Value, StoreError> {
    match result {
        OpResult::Read(v) => Ok(v),
        OpResult::Write => Err(StoreError::Decode("write ack delivered to a read".into())),
    }
}

/// Wakes a parked thread (the whole executor state of [`block_on`]).
struct ThreadUnparker(std::thread::Thread);

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives any future to completion on the current thread, with no async
/// runtime: the waker unparks this thread, the loop re-polls.
///
/// Spurious unparks are handled by re-polling; [`Future::poll`] contract
/// (`wake` called when progress is possible) guarantees termination for
/// the store's slot-backed futures.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::from(Arc::new(ThreadUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Resolves a batch of futures concurrently on the current thread and
/// returns their outputs in order — a tiny `join_all` so examples and
/// load generators can keep many operations in flight without a runtime.
pub fn join_all<F: Future + Unpin>(futs: Vec<F>) -> Vec<F::Output> {
    let waker = Waker::from(Arc::new(ThreadUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut pending: Vec<Option<F>> = futs.into_iter().map(Some).collect();
    let mut results: Vec<Option<F::Output>> = pending.iter().map(|_| None).collect();
    loop {
        let mut all_done = true;
        for (slot, result) in pending.iter_mut().zip(results.iter_mut()) {
            if let Some(fut) = slot {
                match Pin::new(fut).poll(&mut cx) {
                    Poll::Ready(out) => {
                        *result = Some(out);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            return results
                .into_iter()
                .map(|r| r.expect("all futures resolved"))
                .collect();
        }
        std::thread::park();
    }
}
