//! **rsb-store** — a sharded multi-register storage service over the
//! register emulations of `rsb-registers`.
//!
//! The paper studies a *single* reliable register; a storage service is
//! the natural composition: a keyspace hash-partitioned over `N`
//! independent shards, each shard hosting one register per key (all built
//! from one [`RegisterProtocol`](rsb_registers::RegisterProtocol)
//! emulation — ABD, safe, coded, or adaptive). Execution is
//! *event-driven*: each shard keeps a ready queue of keys with enabled
//! simulator events, keys live behind per-key locks, and a pool of
//! *network-driver* threads (one per shard) runs ready keys — home shard
//! first, then stealing from loaded neighbors, so hot-key skew spreads
//! across the pool instead of serializing one driver. Per-key history can
//! be bounded with a [`HistoryPolicy`], and quiescent keys can be evicted
//! to snapshots ([`Store::evict_quiescent`]) and transparently
//! rematerialized.
//!
//! # Client surface
//!
//! [`StoreClient`] is generic over a [`Transport`] — [`Loopback`]
//! (in-process, the default, what [`Store::client`] returns) or
//! [`TcpTransport`] (a versioned length-prefixed binary protocol over a
//! std `TcpStream`, served by [`Store::serve`] / [`StoreServer`]).
//! [`StoreClient::read`] / [`StoreClient::write`] return lightweight
//! futures backed by transport completion cells (driver-filled condvar
//! slots on loopback, reader-thread-filled cells over TCP) — no external
//! async runtime is needed anywhere:
//!
//! * **async** — the futures implement [`std::future::Future`] and can be
//!   awaited from any executor, or from the bundled executor-less
//!   [`block_on`];
//! * **blocking** — [`ReadFuture::wait`] / [`WriteFuture::wait`] (and the
//!   `*_blocking` shorthands) park the calling thread on the cell's
//!   condvar.
//!
//! The [`load`] module offers closed- and open-loop
//! (coordinated-omission-free) load generation over any transport.
//!
//! # Metrics
//!
//! Per-shard and aggregate [`StoreMetrics`] expose operation counts,
//! bytes moved, and — because every shard is a storage-cost-accounted
//! simulation — the *live storage occupancy in bits*, so the paper's
//! space bounds (replication `O(fD)` vs coding's concurrency-dependent
//! blow-up) are observable on a running service.
//!
//! # Example
//!
//! ```
//! use rsb_store::{block_on, ProtocolSpec, Store, StoreConfig};
//! use rsb_registers::RegisterConfig;
//! use rsb_coding::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = StoreConfig::uniform(4, ProtocolSpec::Adaptive, RegisterConfig::paper(1, 2, 32)?);
//! let store = Store::start(cfg)?;
//! let client = store.client();
//!
//! let v = Value::seeded(7, 32);
//! block_on(client.write("user:42", v.clone()))?;
//! assert_eq!(block_on(client.read("user:42"))?, v);
//! assert_eq!(client.read_blocking("missing")?, Value::zeroed(32)); // v₀
//!
//! let m = store.metrics();
//! assert_eq!(m.totals().writes_completed, 1);
//! store.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod future;
pub mod load;
mod mcsync;
mod metrics;
mod net;
mod recorder;
mod shard;
mod store;

pub use config::{
    EvictionPolicy, HistoryPolicy, ListenSpec, ProtocolSpec, ShardSpec, StoreConfig,
    StoreConfigError,
};
pub use future::{block_on, join_all, OpFuture, ReadFuture, WriteFuture};
pub use metrics::{EvictionCause, LatencyHistogram, OpCounters, ShardMetrics, StoreMetrics};
pub use net::{frame, KeyMeta, Loopback, OpTicket, StoreServer, TcpTransport, Transport};
pub use recorder::{FlightEvent, FlightEventKind, FlightRecorder};
pub use store::{BatchOp, KeyHistory, Store, StoreClient, StoreError};
