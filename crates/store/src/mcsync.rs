//! Switchable sync primitives for the store's lock-free hot structs.
//!
//! With the `mc` cargo feature enabled, the `FlightRecorder` seqlock and
//! the shard/`KeySlot` activity atomics run on `rsb-mcsync`'s
//! model-checkable wrappers, so `crates/mc`'s interleaving harness can
//! exhaustively explore their schedules; the wrappers are transparent
//! passthroughs outside a model run. Without the feature these aliases
//! are exactly `std::sync::atomic` / `parking_lot`.

#[cfg(feature = "mc")]
pub(crate) use rsb_mcsync::sync::{AtomicU64, Mutex, Ordering};

#[cfg(not(feature = "mc"))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(feature = "mc"))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
