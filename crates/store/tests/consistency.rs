//! Consistency of recorded multi-key histories: every key's register
//! history, replayed through the `rsb-consistency` checkers.

use rsb_consistency::{check_atomicity, check_strong_regularity, History};
use rsb_registers::RegisterConfig;
use rsb_store::{BatchOp, EvictionPolicy, HistoryPolicy, ProtocolSpec, Store, StoreConfig};
use rsb_workloads::{KeyedAction, KeyedScenario};

/// Drives a keyed scenario with one OS thread per client, blocking ops.
fn drive(store: &Store, scenario: &KeyedScenario) {
    let threads: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                for op in stream {
                    match op.action {
                        KeyedAction::Read => {
                            client.read_blocking(&op.key).unwrap();
                        }
                        KeyedAction::Write(v) => {
                            client.write_blocking(&op.key, v).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
}

/// Like [`drive`], but each client groups its stream into `batch`-op
/// `submit_batch` calls and blocks on the whole group before issuing
/// the next — the grouped-submission, coalesced-stepping path. Ops
/// inside one batch are concurrent register operations.
fn drive_batched(store: &Store, scenario: &KeyedScenario, batch: usize) {
    let threads: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let ops: Vec<_> = scenario.client_ops(c).collect();
            std::thread::spawn(move || {
                for chunk in ops.chunks(batch) {
                    let group: Vec<BatchOp> = chunk
                        .iter()
                        .map(|op| match &op.action {
                            KeyedAction::Read => BatchOp::Read(op.key.clone()),
                            KeyedAction::Write(v) => BatchOp::Write(op.key.clone(), v.clone()),
                        })
                        .collect();
                    for fut in client.submit_batch(group) {
                        fut.wait().unwrap();
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
}

fn check_all_keys(store: &Store, check: impl Fn(&History)) {
    let keys = store.keys();
    assert!(!keys.is_empty(), "scenario touched some keys");
    for key in keys {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records)
            .expect("per-key runtime histories are well-formed");
        check(&history);
    }
}

#[test]
fn adaptive_store_histories_are_strongly_regular() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 40, 24, 0.5, 16, 1234).with_zipf(0.9);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_strong_regularity(h).expect("strong regularity on a recorded key history");
    });
    store.shutdown();
}

#[test]
fn abd_atomic_store_histories_linearize() {
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::AbdAtomic, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 30, 16, 0.6, 16, 99);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_atomicity(h).expect("linearizability of an atomic-ABD key history");
    });
    store.shutdown();
}

#[test]
fn batched_adaptive_histories_are_strongly_regular() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 40, 24, 0.5, 16, 2024).with_zipf(0.9);
    drive_batched(&store, &scenario, 5);
    assert_eq!(store.metrics().totals().completed(), 8 * 40);
    check_all_keys(&store, |h| {
        check_strong_regularity(h).expect("strong regularity of batched adaptive histories");
    });
    store.shutdown();
}

#[test]
fn batched_abd_atomic_histories_linearize() {
    // Batched submission changes the scheduling (grouped shard
    // submission, coalesced simulator stepping) but must not change the
    // register semantics: every recorded history still linearizes, with
    // same-batch ops on one key counting as concurrent.
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::AbdAtomic, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 30, 16, 0.6, 16, 4242);
    drive_batched(&store, &scenario, 5);
    assert_eq!(store.metrics().totals().completed(), 8 * 30);
    check_all_keys(&store, |h| {
        check_atomicity(h).expect("linearizability of batched atomic-ABD histories");
    });
    store.shutdown();
}

#[test]
fn histories_spanning_eviction_cycles_stay_strongly_regular() {
    // Traffic → evict everything → more traffic → evict → more traffic:
    // recorded histories span two full evict/rematerialize cycles, and
    // reads served from a rematerialized key must still be acceptable
    // to the checkers (same timestamps, same op-id line).
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(
        StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)
            .with_history(HistoryPolicy::TruncateAfter(32)),
    )
    .unwrap();
    for round in 0..3u64 {
        let scenario = KeyedScenario::uniform(6, 25, 12, 0.5, 16, 4_000 + round).with_zipf(0.8);
        drive(&store, &scenario);
        if round < 2 {
            let evicted = store.evict_quiescent();
            assert!(evicted > 0, "rounds leave quiescent keys to evict");
        }
    }
    let totals = store.metrics().totals();
    assert!(
        totals.rematerialized > 0,
        "later rounds touched evicted keys"
    );
    check_all_keys(&store, |h| {
        check_strong_regularity(h)
            .expect("strong regularity across eviction/rematerialization cycles");
    });
    store.shutdown();
}

#[test]
fn abd_atomic_histories_spanning_eviction_linearize() {
    // Linearizability must also survive the cycle — with the *governor*
    // doing the evicting (tight occupancy watermarks, so keys cycle
    // through snapshots mid-run), a rematerialized key's reads still
    // linearize against the writes recorded before its eviction.
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(
        StoreConfig::uniform(2, ProtocolSpec::AbdAtomic, reg)
            .with_history(HistoryPolicy::TruncateAfter(64))
            .with_eviction(EvictionPolicy::OccupancyAbove {
                bits: 1,
                low_watermark: 0,
            }),
    )
    .unwrap();
    for round in 0..2u64 {
        let scenario = KeyedScenario::uniform(6, 30, 10, 0.6, 16, 7_000 + round);
        drive(&store, &scenario);
        // A manual sweep between rounds guarantees cycles even if the
        // governor's timing didn't catch a quiescent moment.
        store.evict_quiescent();
    }
    let totals = store.metrics().totals();
    assert!(totals.evictions() > 0, "keys were evicted during the run");
    assert!(totals.rematerialized > 0, "and brought back by traffic");
    check_all_keys(&store, |h| {
        check_atomicity(h).expect("linearizability across eviction/rematerialization cycles");
    });
    store.shutdown();
}

#[test]
fn abd_store_histories_are_strongly_regular() {
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(2, ProtocolSpec::Abd, reg)).unwrap();
    let scenario = KeyedScenario::uniform(6, 30, 12, 0.4, 16, 7);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_strong_regularity(h).expect("strong regularity on a recorded key history");
    });
    store.shutdown();
}
