//! Consistency of recorded multi-key histories: every key's register
//! history, replayed through the `rsb-consistency` checkers.

use rsb_consistency::{check_atomicity, check_strong_regularity, History};
use rsb_registers::RegisterConfig;
use rsb_store::{ProtocolSpec, Store, StoreConfig};
use rsb_workloads::{KeyedAction, KeyedScenario};

/// Drives a keyed scenario with one OS thread per client, blocking ops.
fn drive(store: &Store, scenario: &KeyedScenario) {
    let threads: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                for op in stream {
                    match op.action {
                        KeyedAction::Read => {
                            client.read_blocking(&op.key).unwrap();
                        }
                        KeyedAction::Write(v) => {
                            client.write_blocking(&op.key, v).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
}

fn check_all_keys(store: &Store, check: impl Fn(&History)) {
    let keys = store.keys();
    assert!(!keys.is_empty(), "scenario touched some keys");
    for key in keys {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records)
            .expect("per-key runtime histories are well-formed");
        check(&history);
    }
}

#[test]
fn adaptive_store_histories_are_strongly_regular() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 40, 24, 0.5, 16, 1234).with_zipf(0.9);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_strong_regularity(h).expect("strong regularity on a recorded key history");
    });
    store.shutdown();
}

#[test]
fn abd_atomic_store_histories_linearize() {
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::AbdAtomic, reg)).unwrap();
    let scenario = KeyedScenario::uniform(8, 30, 16, 0.6, 16, 99);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_atomicity(h).expect("linearizability of an atomic-ABD key history");
    });
    store.shutdown();
}

#[test]
fn abd_store_histories_are_strongly_regular() {
    let reg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(2, ProtocolSpec::Abd, reg)).unwrap();
    let scenario = KeyedScenario::uniform(6, 30, 12, 0.4, 16, 7);
    drive(&store, &scenario);
    check_all_keys(&store, |h| {
        check_strong_regularity(h).expect("strong regularity on a recorded key history");
    });
    store.shutdown();
}
