//! End-to-end tests of the TCP wire: handshake, round-trips, error
//! delivery, capacity, shutdown, timeouts, and consistency of histories
//! recorded through the socket path.

use rsb_coding::Value;
use rsb_consistency::{check_strong_regularity, History};
use rsb_registers::RegisterConfig;
use rsb_store::frame::{read_frame, write_frame, Frame, WIRE_VERSION};
use rsb_store::{
    block_on, join_all, BatchOp, ListenSpec, ProtocolSpec, Store, StoreClient, StoreConfig,
    StoreError, StoreServer, TcpTransport,
};
use std::net::TcpStream;
use std::time::Duration;

fn serve(shards: usize, protocol: ProtocolSpec, value_len: usize) -> StoreServer {
    let reg = RegisterConfig::paper(1, 2, value_len).unwrap();
    let config =
        StoreConfig::uniform(shards, protocol, reg).with_listen(ListenSpec::new("127.0.0.1:0"));
    Store::serve(config).unwrap()
}

fn connect(server: &StoreServer) -> StoreClient<TcpTransport> {
    StoreClient::over(TcpTransport::connect(server.local_addr()).unwrap())
}

#[test]
fn blocking_round_trip_over_the_wire() {
    let server = serve(4, ProtocolSpec::Adaptive, 32);
    let client = connect(&server);
    let v = Value::seeded(5, 32);
    client.write_blocking("alpha", v.clone()).unwrap();
    assert_eq!(client.read_blocking("alpha").unwrap(), v);
    assert_eq!(client.read_blocking("missing").unwrap(), Value::zeroed(32));
    server.shutdown();
}

#[test]
fn async_futures_resolve_over_the_wire() {
    let server = serve(2, ProtocolSpec::Abd, 16);
    let client = connect(&server);
    block_on(client.write("k", Value::seeded(9, 16))).unwrap();
    assert_eq!(block_on(client.read("k")).unwrap(), Value::seeded(9, 16));
    server.shutdown();
}

#[test]
fn key_meta_crosses_the_wire() {
    let server = serve(2, ProtocolSpec::Adaptive, 64);
    let client = connect(&server);
    let meta = client.key_meta("anything").unwrap();
    assert_eq!(meta.value_len, 64);
    assert_eq!(meta.protocol, "adaptive");
    assert_eq!(client.value_len("anything").unwrap(), 64);
    assert_eq!(client.protocol_of("anything").unwrap(), "adaptive");
    server.shutdown();
}

#[test]
fn bad_value_length_is_reported_through_the_socket() {
    let server = serve(1, ProtocolSpec::Safe, 16);
    let client = connect(&server);
    assert_eq!(
        client
            .write_blocking("k", Value::seeded(1, 99))
            .unwrap_err(),
        StoreError::BadValueLength { got: 99, want: 16 }
    );
    // The connection survives an operation error.
    client.write_blocking("k", Value::seeded(1, 16)).unwrap();
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let server = serve(1, ProtocolSpec::Abd, 16);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut &stream, &Frame::Hello { version: 99 }).unwrap();
    match read_frame(&mut &stream).unwrap() {
        Some(Frame::ErrorResp { id: 0, error }) => assert_eq!(
            error,
            StoreError::ProtocolVersion {
                got: 99,
                want: WIRE_VERSION
            }
        ),
        other => panic!("expected a version rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn garbage_after_handshake_gets_a_decode_error_and_a_close() {
    let server = serve(1, ProtocolSpec::Abd, 16);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(
        &mut &stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut &stream).unwrap(),
        Some(Frame::HelloAck { .. })
    ));
    // An unknown tag with a plausible length prefix.
    use std::io::Write;
    (&stream).write_all(&[1u8, 0, 0, 0, 0xFF]).unwrap();
    match read_frame(&mut &stream).unwrap() {
        Some(Frame::ErrorResp { id: 0, error }) => {
            assert!(matches!(error, StoreError::Decode(_)), "got {error:?}");
        }
        other => panic!("expected a decode rejection, got {other:?}"),
    }
    // The server closes the connection after the rejection.
    assert!(matches!(read_frame(&mut &stream), Ok(None) | Err(_)));
    server.shutdown();
}

#[test]
fn capacity_overflow_is_rejected_with_a_clean_error() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let config = StoreConfig::uniform(1, ProtocolSpec::Abd, reg)
        .with_listen(ListenSpec::new("127.0.0.1:0").with_backlog(1));
    let server = Store::serve(config).unwrap();
    let first = connect(&server);
    first.write_blocking("k", Value::seeded(1, 16)).unwrap();
    match TcpTransport::connect(server.local_addr()) {
        Err(StoreError::Rejected(msg)) => assert!(msg.contains("capacity"), "got: {msg}"),
        other => panic!("expected a capacity rejection, got {other:?}"),
    }
    // The first connection is unaffected.
    first.read_blocking("k").unwrap();
    server.shutdown();
}

#[test]
fn server_shutdown_fails_clients_instead_of_hanging() {
    let server = serve(2, ProtocolSpec::Abd, 16);
    let client = connect(&server);
    client.write_blocking("k", Value::seeded(1, 16)).unwrap();
    server.shutdown();
    // Either the dead connection or, if the shutdown raced the
    // submission, a ShutDown relayed as an error frame.
    let err = client.read_blocking("k").unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_) | StoreError::ShutDown),
        "got {err:?}"
    );
}

#[test]
fn per_op_timeout_fires_when_the_server_goes_mute() {
    // A fake server that completes the handshake and then never responds.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        match read_frame(&mut &stream) {
            Ok(Some(Frame::Hello { .. })) => {
                write_frame(
                    &mut &stream,
                    &Frame::HelloAck {
                        version: WIRE_VERSION,
                    },
                )
                .unwrap();
            }
            other => panic!("expected a hello, got {other:?}"),
        }
        // Hold the socket open without answering anything.
        std::thread::sleep(Duration::from_millis(500));
    });
    let transport = TcpTransport::connect_with(addr, Some(Duration::from_millis(50))).unwrap();
    let client: StoreClient<TcpTransport> = StoreClient::over(transport);
    assert_eq!(client.read_blocking("k").unwrap_err(), StoreError::Timeout);
    mute.join().unwrap();
}

#[test]
fn concurrent_tcp_clients_record_checkable_histories() {
    let server = serve(4, ProtocolSpec::Abd, 16);
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let client: StoreClient<TcpTransport> =
                    StoreClient::over(TcpTransport::connect(addr).unwrap());
                for i in 0..10u64 {
                    let key = format!("k{}", i % 3);
                    client
                        .write_blocking(&key, Value::seeded(c * 100 + i, 16))
                        .unwrap();
                    client.read_blocking(&key).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let store = server.store();
    assert_eq!(store.metrics().totals().completed(), 80);
    for key in store.keys() {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records).unwrap();
        check_strong_regularity(&history)
            .expect("strong regularity of a history recorded through TCP");
    }
    server.shutdown();
}

#[test]
fn mixed_batch_round_trips_over_the_wire() {
    let server = serve(4, ProtocolSpec::Adaptive, 16);
    let client = connect(&server);
    let va = Value::seeded(1, 16);
    let vb = Value::seeded(2, 16);
    let writes = join_all(client.submit_batch(vec![
        BatchOp::Write("a".into(), va.clone()),
        BatchOp::Write("b".into(), vb.clone()),
        // A server-side per-op failure comes back as this op's error
        // entry of the one BatchResp — batchmates are unaffected.
        BatchOp::Write("bad".into(), Value::seeded(3, 99)),
    ]));
    assert_eq!(writes[0], Ok(rsb_fpsm::OpResult::Write));
    assert_eq!(writes[1], Ok(rsb_fpsm::OpResult::Write));
    assert_eq!(
        writes[2],
        Err(StoreError::BadValueLength { got: 99, want: 16 })
    );
    let reads =
        join_all(client.submit_batch(vec![BatchOp::Read("a".into()), BatchOp::Read("b".into())]));
    assert_eq!(reads[0], Ok(rsb_fpsm::OpResult::Read(va)));
    assert_eq!(reads[1], Ok(rsb_fpsm::OpResult::Read(vb)));
    server.shutdown();
}

#[test]
fn concurrent_batched_tcp_clients_record_checkable_histories() {
    let server = serve(4, ProtocolSpec::Abd, 16);
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let client: StoreClient<TcpTransport> =
                    StoreClient::over(TcpTransport::connect(addr).unwrap());
                for round in 0..5u64 {
                    // A whole write+read wave on 3 shared keys per frame.
                    let mut ops = Vec::new();
                    for i in 0..3u64 {
                        ops.push(BatchOp::Write(
                            format!("k{i}"),
                            Value::seeded(c * 1000 + round * 10 + i, 16),
                        ));
                        ops.push(BatchOp::Read(format!("k{i}")));
                    }
                    for result in join_all(client.submit_batch(ops)) {
                        result.unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let store = server.store();
    assert_eq!(store.metrics().totals().completed(), 120);
    for key in store.keys() {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records).unwrap();
        check_strong_regularity(&history)
            .expect("strong regularity of batched histories recorded through TCP");
    }
    server.shutdown();
}

#[test]
fn one_connection_shared_by_many_threads_multiplexes() {
    let server = serve(4, ProtocolSpec::Adaptive, 16);
    let client = connect(&server);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..10u64 {
                    let key = format!("t{t}-{}", i % 2);
                    client.write_blocking(&key, Value::seeded(i, 16)).unwrap();
                    client.read_blocking(&key).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.store().metrics().totals().completed(), 160);
    server.shutdown();
}

#[test]
fn stats_scrape_crosses_the_wire_and_matches_in_process_metrics() {
    let server = serve(4, ProtocolSpec::Adaptive, 16);
    let client = connect(&server);
    for i in 0..20u64 {
        let key = format!("k{}", i % 5);
        client.write_blocking(&key, Value::seeded(i, 16)).unwrap();
        client.read_blocking(&key).unwrap();
    }
    // The pump records wire time *after* writing each response, so the
    // scrape that observes our own completions may race the last wire
    // sample by a few microseconds — poll until it lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let scraped = loop {
        let m = client.stats().unwrap();
        // 40 ops + the scrapes themselves are not wire-timed (stats
        // frames bypass shard submission), so exactly 40 samples land.
        if m.wire().count() == 40 || std::time::Instant::now() > deadline {
            break m;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(scraped.totals().completed(), 40);
    assert_eq!(scraped.totals().reads_completed, 20);
    assert_eq!(scraped.totals().writes_completed, 20);
    // Phase attribution covers every completed op.
    assert_eq!(scraped.queue_wait().count(), 40);
    assert_eq!(scraped.execute().count(), 40);
    assert_eq!(scraped.end_to_end_latency().count(), 40);
    assert_eq!(scraped.wire().count(), 40);
    // The scraped snapshot equals the in-process one — byte-identical
    // decode of everything, histograms included.
    let local = server.store().metrics();
    assert_eq!(scraped, local);
    // Prometheus rendering of a remote scrape works and carries the op
    // totals.
    let text = scraped.render_prometheus();
    assert!(text.contains("rsb_store_reads_completed_total 20"));
    assert!(text.contains("rsb_store_writes_completed_total 20"));
    assert!(text.contains("rsb_store_wire_ns_count 40"));
    server.shutdown();
}

#[test]
fn stats_scrape_fails_cleanly_after_shutdown() {
    let server = serve(1, ProtocolSpec::Abd, 16);
    let client = connect(&server);
    client.stats().unwrap();
    server.shutdown();
    let err = client.stats().unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::Io(_) | StoreError::ShutDown | StoreError::Timeout
        ),
        "got {err:?}"
    );
}

#[test]
fn open_loop_load_runs_over_tcp() {
    use rsb_store::load::{run_load, LoadMode, LoadSpec};
    let server = serve(4, ProtocolSpec::Adaptive, 16);
    let client = connect(&server);
    let report = run_load(
        &client,
        &LoadSpec {
            clients: 4,
            ops_per_client: 25,
            keys: 16,
            write_fraction: 0.5,
            value_len: 16,
            seed: 3,
            mode: LoadMode::Open { rate: 5_000.0 },
            batch: 1,
        },
    );
    assert_eq!(report.ok, 100, "first error: {:?}", report.first_error);
    assert_eq!(report.errors, 0);
    server.shutdown();
}

#[test]
fn batched_load_runs_over_tcp() {
    use rsb_store::load::{run_load, LoadMode, LoadSpec};
    let server = serve(4, ProtocolSpec::Adaptive, 16);
    let client = connect(&server);
    for mode in [LoadMode::Closed, LoadMode::Open { rate: 5_000.0 }] {
        let report = run_load(
            &client,
            &LoadSpec {
                clients: 2,
                ops_per_client: 30,
                keys: 16,
                write_fraction: 0.5,
                value_len: 16,
                seed: 5,
                mode,
                batch: 8,
            },
        );
        assert_eq!(report.ok, 60, "first error: {:?}", report.first_error);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 60);
    }
    server.shutdown();
}
