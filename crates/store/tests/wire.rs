//! Wire-codec tests: SplitMix64-fuzzed round-trips of every frame type,
//! plus rejection of truncated, oversized, zero-length, unknown-tag, and
//! bad-magic frames — always a clean [`StoreError::Decode`] (or `Io` for
//! mid-frame EOF), never a panic.

use rsb_store::frame::{
    decode_payload, encode_frame, read_frame, write_frame, Frame, WireOp, MAX_FRAME_LEN,
    WIRE_VERSION,
};
use rsb_store::{LatencyHistogram, OpCounters, ShardMetrics, StoreError, StoreMetrics};

/// SplitMix64 — the repo's standard deterministic fuzz generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_string(state: &mut u64, max_len: u64) -> String {
    let len = splitmix(state) % (max_len + 1);
    (0..len)
        .map(|_| char::from(b'a' + (splitmix(state) % 26) as u8))
        .collect()
}

fn random_bytes(state: &mut u64, max_len: u64) -> Vec<u8> {
    let len = splitmix(state) % (max_len + 1);
    (0..len).map(|_| (splitmix(state) & 0xff) as u8).collect()
}

fn random_error(state: &mut u64) -> StoreError {
    match splitmix(state) % 7 {
        0 => StoreError::ShutDown,
        1 => StoreError::Rejected(random_string(state, 40)),
        2 => StoreError::BadValueLength {
            got: (splitmix(state) % 10_000) as usize,
            want: (splitmix(state) % 10_000) as usize,
        },
        3 => StoreError::Io(random_string(state, 40)),
        4 => StoreError::Decode(random_string(state, 40)),
        5 => StoreError::ProtocolVersion {
            got: (splitmix(state) & 0xffff) as u16,
            want: (splitmix(state) & 0xffff) as u16,
        },
        _ => StoreError::Timeout,
    }
}

/// A valid histogram with up to `max_samples` random samples — built by
/// *recording*, so every occupied bucket has genuine log-linear bounds.
fn random_histogram(state: &mut u64, max_samples: u64) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    let samples = splitmix(state) % (max_samples + 1);
    for _ in 0..samples {
        // Skew toward small exponents but occasionally hit huge values.
        let shift = splitmix(state) % 64;
        h.record_ns(splitmix(state) >> shift);
    }
    h
}

fn random_counters(state: &mut u64) -> OpCounters {
    OpCounters {
        reads_submitted: splitmix(state),
        writes_submitted: splitmix(state),
        reads_completed: splitmix(state),
        writes_completed: splitmix(state),
        bytes_read: splitmix(state),
        bytes_written: splitmix(state),
        rejected: splitmix(state),
        steals: splitmix(state),
        stolen: splitmix(state),
        stolen_batches: splitmix(state),
        truncated_records: splitmix(state),
        rematerialized: splitmix(state),
        evicted_manual: splitmix(state),
        evicted_idle: splitmix(state),
        evicted_occupancy: splitmix(state),
    }
}

fn random_shard_metrics(state: &mut u64, shard: usize) -> ShardMetrics {
    ShardMetrics {
        shard,
        protocol: random_string(state, 16),
        keys: (splitmix(state) % 100_000) as usize,
        ops: random_counters(state),
        occupancy: rsb_fpsm::StorageCost {
            object_bits: splitmix(state),
            client_bits: splitmix(state),
            inflight_param_bits: splitmix(state),
            inflight_resp_bits: splitmix(state),
        },
        peak_register_bits: splitmix(state),
        live_records: splitmix(state),
        evicted_keys: (splitmix(state) % 100_000) as usize,
        snapshot_bits: splitmix(state),
        ready_keys: (splitmix(state) % 100_000) as usize,
        governed_bits: splitmix(state),
        read_hit_latency: random_histogram(state, 40),
        read_remat_latency: random_histogram(state, 40),
        write_latency: random_histogram(state, 40),
        queue_wait: random_histogram(state, 40),
        execute: random_histogram(state, 40),
        wire: random_histogram(state, 40),
    }
}

fn random_store_metrics(state: &mut u64) -> StoreMetrics {
    let shards = (splitmix(state) % 5) as usize;
    StoreMetrics {
        shards: (0..shards)
            .map(|i| random_shard_metrics(state, i))
            .collect(),
    }
}

fn random_wire_op(state: &mut u64) -> WireOp {
    if splitmix(state).is_multiple_of(2) {
        WireOp::Read(random_string(state, 64))
    } else {
        WireOp::Write(random_string(state, 64), random_bytes(state, 256))
    }
}

fn random_wire_op_result(state: &mut u64) -> Result<Option<Vec<u8>>, StoreError> {
    match splitmix(state) % 3 {
        0 => Ok(Some(random_bytes(state, 256))),
        1 => Ok(None),
        _ => Err(random_error(state)),
    }
}

fn random_frame(state: &mut u64) -> Frame {
    match splitmix(state) % 13 {
        0 => Frame::Hello {
            version: (splitmix(state) & 0xffff) as u16,
        },
        1 => Frame::HelloAck {
            version: (splitmix(state) & 0xffff) as u16,
        },
        2 => Frame::ReadReq {
            id: splitmix(state),
            key: random_string(state, 64),
        },
        3 => Frame::WriteReq {
            id: splitmix(state),
            key: random_string(state, 64),
            value: random_bytes(state, 256),
        },
        4 => Frame::MetaReq {
            id: splitmix(state),
            key: random_string(state, 64),
        },
        5 => Frame::ReadResp {
            id: splitmix(state),
            value: random_bytes(state, 256),
        },
        6 => Frame::WriteResp {
            id: splitmix(state),
        },
        7 => Frame::MetaResp {
            id: splitmix(state),
            value_len: splitmix(state) as u32,
            protocol: random_string(state, 16),
        },
        8 => Frame::ErrorResp {
            id: splitmix(state),
            error: random_error(state),
        },
        9 => Frame::StatsReq {
            id: splitmix(state),
        },
        10 => Frame::StatsResp {
            id: splitmix(state),
            metrics: random_store_metrics(state),
        },
        11 => Frame::BatchReq {
            id: splitmix(state),
            ops: (0..=(splitmix(state) % 8))
                .map(|_| random_wire_op(state))
                .collect(),
        },
        _ => Frame::BatchResp {
            id: splitmix(state),
            results: (0..=(splitmix(state) % 8))
                .map(|_| random_wire_op_result(state))
                .collect(),
        },
    }
}

#[test]
fn fuzz_round_trips_every_frame_type() {
    let mut state = 0xE10_u64;
    let mut seen = [0u32; 13];
    for _ in 0..4000 {
        let frame = random_frame(&mut state);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let decoded = read_frame(&mut buf.as_slice())
            .expect("well-formed frame decodes")
            .expect("frame present");
        assert_eq!(decoded, frame, "round-trip must be lossless");
        let tag = buf[4] as usize;
        seen[tag - 1] += 1;
    }
    assert!(
        seen.iter().all(|&c| c > 0),
        "fuzz covered every frame type: {seen:?}"
    );
}

#[test]
fn fuzz_round_trips_back_to_back_streams() {
    let mut state = 0xBEEF_u64;
    for _ in 0..50 {
        let frames: Vec<Frame> = (0..=(splitmix(&mut state) % 8))
            .map(|_| random_frame(&mut state))
            .collect();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("vec write");
        }
        let mut r = buf.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frames");
    }
}

#[test]
fn every_truncation_of_every_frame_is_rejected_cleanly() {
    let mut state = 0x7_u64;
    for _ in 0..200 {
        let frame = random_frame(&mut state);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Ok(None) => assert_eq!(cut, 0, "Ok(None) only before any byte"),
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Err(StoreError::Io(_) | StoreError::Decode(_)) => {}
                Err(other) => panic!("unexpected error {other:?} at cut {cut}"),
            }
        }
    }
}

#[test]
fn truncated_payloads_decode_to_errors_not_panics() {
    let mut state = 0x51_u64;
    for _ in 0..200 {
        let frame = random_frame(&mut state);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            assert!(
                matches!(decode_payload(&payload[..cut]), Err(StoreError::Decode(_))),
                "payload cut at {cut} must be a Decode error"
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut state = 0x99_u64;
    for _ in 0..100 {
        let frame = random_frame(&mut state);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let mut payload = buf[4..].to_vec();
        payload.push(0xAA);
        assert!(matches!(
            decode_payload(&payload),
            Err(StoreError::Decode(_))
        ));
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    for len in [MAX_FRAME_LEN + 1, u32::MAX] {
        let mut buf = len.to_le_bytes().to_vec();
        buf.push(1);
        match read_frame(&mut buf.as_slice()) {
            Err(StoreError::Decode(msg)) => assert!(msg.contains("bound"), "got: {msg}"),
            other => panic!("oversized prefix must be a Decode error, got {other:?}"),
        }
    }
}

#[test]
fn zero_length_and_unknown_tag_frames_are_rejected() {
    assert!(matches!(
        read_frame(&mut [0u8, 0, 0, 0].as_slice()),
        Err(StoreError::Decode(_))
    ));
    // Tag 0 and tags past the last known one are both unknown.
    for tag in [0u8, 14, 0xFF] {
        let buf = [1u8, 0, 0, 0, tag];
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(StoreError::Decode(_))
        ));
    }
}

#[test]
fn zero_length_batches_are_rejected() {
    // A batch frame whose count field says zero operations (or zero
    // results) is meaningless; the decoder rejects it rather than
    // producing an empty batch that no submission path can create.
    let mut req = Vec::new();
    encode_frame(
        &Frame::BatchReq {
            id: 7,
            ops: vec![WireOp::Read("k".into())],
        },
        &mut req,
    );
    let mut resp = Vec::new();
    encode_frame(
        &Frame::BatchResp {
            id: 7,
            results: vec![Ok(None)],
        },
        &mut resp,
    );
    for mut buf in [req, resp] {
        // Zero the op-count field: it sits after the 4-byte length
        // prefix, the 1-byte tag, and the 8-byte id.
        buf[13] = 0;
        buf[14] = 0;
        // The frame now carries trailing op bytes past a zero count, so
        // truncate to just header + id + count as well to exercise the
        // pure empty-batch path.
        let mut short = buf[..15].to_vec();
        short[0..4].copy_from_slice(&u32::to_le_bytes(11));
        for candidate in [buf, short] {
            match read_frame(&mut candidate.as_slice()) {
                Err(StoreError::Decode(msg)) => {
                    assert!(msg.contains("empty batch"), "got: {msg}");
                }
                other => panic!("zero-count batch must be a Decode error, got {other:?}"),
            }
        }
    }
}

#[test]
fn oversized_batch_counts_never_preallocate() {
    // A hostile count field far past the actual payload must fail
    // cleanly (the decoder grows vectors as it parses, so the huge
    // count can't drive a pre-allocation).
    let mut buf = Vec::new();
    encode_frame(
        &Frame::BatchReq {
            id: 1,
            ops: vec![WireOp::Read("k".into())],
        },
        &mut buf,
    );
    buf[13] = 0xFF;
    buf[14] = 0xFF;
    assert!(matches!(
        read_frame(&mut buf.as_slice()),
        Err(StoreError::Decode(_))
    ));
}

#[test]
fn corrupted_stats_frames_never_panic() {
    // Stats responses carry the deepest nested payload on the wire
    // (shards → counters → histogram bucket triples). Flip every byte
    // of a few encoded frames: decode must return Ok or a clean Decode
    // error — never panic, never violate histogram bucket invariants.
    let mut state = 0xCAFE_u64;
    for _ in 0..8 {
        let frame = Frame::StatsResp {
            id: splitmix(&mut state),
            metrics: random_store_metrics(&mut state),
        };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let payload = buf[4..].to_vec();
        for i in 0..payload.len() {
            let mut bent = payload.clone();
            bent[i] ^= 0xFF;
            if let Ok(Frame::StatsResp { metrics, .. }) = decode_payload(&bent) {
                // A flip that still decodes must still satisfy the
                // histogram invariant the decoder enforces.
                for sh in &metrics.shards {
                    for h in [&sh.read_hit_latency, &sh.queue_wait, &sh.wire] {
                        let mut last_hi = 0;
                        for (lo, hi, count) in h.buckets() {
                            assert!(lo < hi && count > 0 && lo >= last_hi);
                            last_hi = hi;
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn hello_with_bad_magic_is_rejected() {
    let mut buf = Vec::new();
    encode_frame(
        &Frame::Hello {
            version: WIRE_VERSION,
        },
        &mut buf,
    );
    buf[5] = b'X'; // corrupt the magic
    assert!(matches!(
        read_frame(&mut buf.as_slice()),
        Err(StoreError::Decode(_))
    ));
}

#[test]
fn every_error_code_round_trips_exactly() {
    let cases = [
        StoreError::ShutDown,
        StoreError::Rejected("nope".into()),
        StoreError::BadValueLength { got: 3, want: 64 },
        StoreError::Io("broken pipe".into()),
        StoreError::Decode("garbage".into()),
        StoreError::ProtocolVersion { got: 2, want: 1 },
        StoreError::Timeout,
    ];
    for error in cases {
        let frame = Frame::ErrorResp {
            id: 9,
            error: error.clone(),
        };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap().unwrap(), frame);
    }
}

#[test]
fn local_only_config_error_folds_to_rejected_on_the_wire() {
    let error = StoreError::Config(rsb_store::StoreConfigError::ZeroBacklog);
    let mut buf = Vec::new();
    encode_frame(&Frame::ErrorResp { id: 1, error }, &mut buf);
    match read_frame(&mut buf.as_slice()).unwrap().unwrap() {
        Frame::ErrorResp {
            error: StoreError::Rejected(msg),
            ..
        } => assert!(msg.contains("backlog"), "folded message: {msg}"),
        other => panic!("expected a folded Rejected, got {other:?}"),
    }
}
