//! Runtime lifecycle: concurrent clients across shards, shutdown with
//! operations in flight, and client handles outliving the store.

use rsb_coding::Value;
use rsb_registers::RegisterConfig;
use rsb_store::{block_on, join_all, ProtocolSpec, Store, StoreConfig, StoreError};

fn store(shards: usize, protocol: ProtocolSpec) -> Store {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    Store::start(StoreConfig::uniform(shards, protocol, reg)).unwrap()
}

#[test]
fn concurrent_clients_across_shards() {
    let s = store(8, ProtocolSpec::Adaptive);
    let threads: Vec<_> = (0..16u64)
        .map(|t| {
            let client = s.client();
            std::thread::spawn(move || {
                for i in 0..10u64 {
                    let key = format!("t{t}-k{i}");
                    let v = Value::seeded(t * 1000 + i + 1, 16);
                    client.write_blocking(&key, v.clone()).unwrap();
                    assert_eq!(client.read_blocking(&key).unwrap(), v);
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    let m = s.metrics();
    assert_eq!(m.totals().writes_completed, 160);
    assert_eq!(m.totals().reads_completed, 160);
    assert_eq!(m.keys(), 160);
    assert!(
        m.shards.iter().filter(|sh| sh.keys > 0).count() >= 6,
        "160 keys should land on nearly all of 8 shards"
    );
    s.shutdown();
}

#[test]
fn one_clone_of_a_client_shared_by_many_threads() {
    let s = store(4, ProtocolSpec::Abd);
    let client = s.client();
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                client
                    .write_blocking(&format!("shared-{t}"), Value::seeded(t + 1, 16))
                    .unwrap();
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    assert_eq!(s.metrics().totals().writes_completed, 8);
    s.shutdown();
}

#[test]
fn shutdown_with_ops_in_flight_resolves_every_future() {
    let s = store(4, ProtocolSpec::Adaptive);
    let client = s.client();
    // Launch a wave of writes and shut the store down while they are in
    // flight; every future must resolve (ack or ShutDown), never hang.
    let writes: Vec<_> = (0..64u64)
        .map(|i| client.write(&format!("k{i}"), Value::seeded(i + 1, 16)))
        .collect();
    s.shutdown();
    let outcomes = join_all(writes);
    assert_eq!(outcomes.len(), 64);
    for out in outcomes {
        match out {
            Ok(()) | Err(StoreError::ShutDown) => {}
            Err(other) => panic!("unexpected error after shutdown: {other}"),
        }
    }
}

#[test]
fn client_outliving_the_store_gets_errors_not_hangs() {
    let s = store(2, ProtocolSpec::Safe);
    let client = s.client();
    client
        .write_blocking("persist", Value::seeded(5, 16))
        .unwrap();
    s.shutdown();
    assert_eq!(
        client.read_blocking("persist").unwrap_err(),
        StoreError::ShutDown
    );
    assert_eq!(
        client
            .write_blocking("persist", Value::seeded(6, 16))
            .unwrap_err(),
        StoreError::ShutDown
    );
    // The async path reports the same, through the future.
    assert_eq!(block_on(client.read("persist")), Err(StoreError::ShutDown));
}

#[test]
fn drivers_parked_on_empty_ready_queues_observe_shutdown_promptly() {
    // All drivers end up parked on empty ready queues (untimed condvar
    // waits — there is no polling fallback that would mask a lost stop
    // signal). Shutdown must wake and join them promptly; a regression
    // to a missed wakeup would hang far past the assertion bound.
    let s = store(8, ProtocolSpec::Adaptive);
    let client = s.client();
    for i in 0..8u64 {
        client
            .write_blocking(&format!("idle-{i}"), Value::seeded(i + 1, 16))
            .unwrap();
    }
    // Give every driver time to drain its queue and park.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let start = std::time::Instant::now();
    s.shutdown();
    let took = start.elapsed();
    assert!(
        took < std::time::Duration::from_secs(2),
        "shutdown of parked drivers took {took:?}"
    );
}

#[test]
fn drop_is_a_clean_shutdown() {
    let client = {
        let s = store(2, ProtocolSpec::Abd);
        let c = s.client();
        c.write_blocking("k", Value::seeded(1, 16)).unwrap();
        c
        // store dropped here: drivers stopped and joined
    };
    assert_eq!(client.read_blocking("k").unwrap_err(), StoreError::ShutDown);
}

#[test]
fn mixed_protocol_shards_coexist() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let mut cfg = StoreConfig::uniform(4, ProtocolSpec::Abd, reg);
    cfg.shards[1].protocol = ProtocolSpec::Adaptive;
    cfg.shards[3].protocol = ProtocolSpec::Safe;
    let s = Store::start(cfg).unwrap();
    let client = s.client();
    for i in 0..32u64 {
        let key = format!("mix-{i}");
        let v = Value::seeded(i + 1, 16);
        client.write_blocking(&key, v.clone()).unwrap();
        assert_eq!(client.read_blocking(&key).unwrap(), v);
    }
    let m = s.metrics();
    assert_eq!(m.totals().writes_completed, 32);
    let protos: std::collections::HashSet<_> =
        m.shards.iter().map(|sh| sh.protocol.clone()).collect();
    assert!(protos.len() >= 2, "placement reached differing protocols");
    s.shutdown();
}

#[test]
fn pipelined_futures_on_one_key_stay_well_formed() {
    // Many async ops on the same key from one client handle: the shard
    // allocates extra sim clients so concurrent submissions never
    // violate the one-outstanding-op-per-client rule.
    let s = store(1, ProtocolSpec::Abd);
    let client = s.client();
    let writes: Vec<_> = (0..16u64)
        .map(|i| client.write("hot", Value::seeded(i + 1, 16)))
        .collect();
    for out in join_all(writes) {
        out.unwrap();
    }
    let reads: Vec<_> = (0..16).map(|_| client.read("hot")).collect();
    let mut got = Vec::new();
    for out in join_all(reads) {
        got.push(out.unwrap());
    }
    // All reads see *some* written value (regular register, quiescent).
    let written: Vec<Value> = (0..16u64).map(|i| Value::seeded(i + 1, 16)).collect();
    for v in got {
        assert!(written.contains(&v));
    }
    s.shutdown();
}
