//! The eviction governor: policy-driven reclamation by the driver pool,
//! counter consistency across evict→rematerialize→compact cycles, and
//! the eviction-vs-shutdown races.

use rsb_coding::Value;
use rsb_registers::RegisterConfig;
use rsb_store::{
    block_on, join_all, EvictionPolicy, HistoryPolicy, ProtocolSpec, Store, StoreConfig,
    StoreError, StoreMetrics,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const VALUE_LEN: usize = 16;

fn config(shards: usize, protocol: ProtocolSpec) -> StoreConfig {
    let reg = RegisterConfig::paper(1, 2, VALUE_LEN).unwrap();
    StoreConfig::uniform(shards, protocol, reg)
}

/// Polls the metrics until `pred` holds or the deadline passes — the
/// governor runs on driver threads, so tests wait for it instead of
/// assuming scheduling.
fn wait_for(store: &Store, pred: impl Fn(&StoreMetrics) -> bool) -> StoreMetrics {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = store.metrics();
        if pred(&m) || Instant::now() > deadline {
            return m;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn idle_policy_evicts_cold_keys_and_rematerializes_on_touch() {
    // One shard so every key ages on the same logical clock.
    let store =
        Store::start(config(1, ProtocolSpec::Abd).with_eviction(EvictionPolicy::IdleAfter(20)))
            .unwrap();
    let client = store.client();
    // Materialize a cold set…
    for i in 0..8u64 {
        client
            .write_blocking(&format!("cold-{i}"), Value::seeded(i + 1, VALUE_LEN))
            .unwrap();
    }
    // …then age it past the threshold with hot-key traffic (each op is
    // at least one submission tick plus one batch tick).
    for i in 0..40u64 {
        client
            .write_blocking("hot", Value::seeded(100 + i, VALUE_LEN))
            .unwrap();
    }
    let m = wait_for(&store, |m| m.evicted_keys() >= 8);
    let totals = m.totals();
    assert!(
        m.evicted_keys() >= 8,
        "idle sweep should evict the cold set, evicted {}",
        m.evicted_keys()
    );
    assert!(
        totals.evicted_idle >= 8,
        "evictions attributed to the idle cause"
    );
    assert_eq!(totals.evicted_manual, 0);
    assert_eq!(totals.evicted_occupancy, 0);
    // Touching a cold key transparently rematerializes it, value intact.
    for i in 0..8u64 {
        assert_eq!(
            client.read_blocking(&format!("cold-{i}")).unwrap(),
            Value::seeded(i + 1, VALUE_LEN)
        );
    }
    let after = store.metrics().totals();
    assert!(after.rematerialized >= 8, "cold reads rematerialized");
    // The reads above were classified as rematerializing reads and their
    // latency recorded in the remat histogram; a read of the live hot
    // key lands in the hit histogram instead.
    assert!(store.metrics().read_remat_latency().count() >= 8);
    client.read_blocking("hot").unwrap();
    assert_eq!(store.metrics().read_hit_latency().count(), 1);
    store.shutdown();
}

#[test]
fn wall_clock_aging_reclaims_keys_on_a_silent_store() {
    // Tick-based idle aging needs traffic to advance the clock: a store
    // that goes silent freezes its ticks and never sheds its cold keys.
    // `with_idle_wall_clock` adds a wall-clock age (and a parked-driver
    // wake timer), so the same sweep runs on a store receiving zero
    // submissions. The tick threshold here is set unreachably high —
    // any eviction observed is wall-clock aging alone.
    let store = Store::start(
        config(1, ProtocolSpec::Abd)
            .with_eviction(EvictionPolicy::IdleAfter(u64::MAX))
            .with_idle_wall_clock(Duration::from_millis(50)),
    )
    .unwrap();
    let client = store.client();
    for i in 0..4u64 {
        client
            .write_blocking(&format!("aging-{i}"), Value::seeded(i + 1, VALUE_LEN))
            .unwrap();
    }
    // No further traffic: only the drivers' timed wakeups can evict.
    let m = wait_for(&store, |m| m.evicted_keys() >= 4);
    assert!(
        m.evicted_keys() >= 4,
        "silent store should shed its aged keys, evicted {}",
        m.evicted_keys()
    );
    assert!(m.totals().evicted_idle >= 4, "attributed to the idle cause");
    // Values survive the cycle.
    for i in 0..4u64 {
        assert_eq!(
            client.read_blocking(&format!("aging-{i}")).unwrap(),
            Value::seeded(i + 1, VALUE_LEN)
        );
    }
    store.shutdown();

    // Control: same tick threshold without the wall clock — the silent
    // store keeps every key live, because nothing advances the ticks.
    let store = Store::start(
        config(1, ProtocolSpec::Abd).with_eviction(EvictionPolicy::IdleAfter(u64::MAX)),
    )
    .unwrap();
    let client = store.client();
    for i in 0..4u64 {
        client
            .write_blocking(&format!("pinned-{i}"), Value::seeded(i + 1, VALUE_LEN))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));
    let m = store.metrics();
    assert_eq!(
        m.evicted_keys(),
        0,
        "without a wall clock, a silent store never ages its keys"
    );
    store.shutdown();
}

#[test]
fn occupancy_policy_holds_the_low_watermark() {
    // Baseline: how much do 32 ABD keys occupy unbounded?
    let baseline = Store::start(config(1, ProtocolSpec::Abd)).unwrap();
    let client = baseline.client();
    for i in 0..32u64 {
        client
            .write_blocking(&format!("k{i}"), Value::seeded(i + 1, VALUE_LEN))
            .unwrap();
    }
    let full_bits = baseline.metrics().occupancy_bits();
    baseline.shutdown();
    assert!(full_bits > 0);

    // Governed store: arm the trigger at half the unbounded footprint.
    let bits = full_bits / 2;
    let low_watermark = full_bits / 4;
    let store = Store::start(config(1, ProtocolSpec::Abd).with_eviction(
        EvictionPolicy::OccupancyAbove {
            bits,
            low_watermark,
        },
    ))
    .unwrap();
    let client = store.client();
    for i in 0..32u64 {
        client
            .write_blocking(&format!("k{i}"), Value::seeded(i + 1, VALUE_LEN))
            .unwrap();
    }
    let m = wait_for(&store, |m| m.occupancy_bits() <= bits);
    assert!(
        m.occupancy_bits() <= bits,
        "governed occupancy {} must be held at/below the high watermark {bits} \
         (unbounded footprint was {full_bits})",
        m.occupancy_bits()
    );
    assert!(m.totals().evicted_occupancy > 0, "trigger fired");
    // Coldest-first: the most recently touched key should still be live.
    // (k31 was written last; spot-check by reading it and confirming the
    // read did not rematerialize anything new beyond what re-reads do.)
    for i in 0..32u64 {
        assert_eq!(
            client.read_blocking(&format!("k{i}")).unwrap(),
            Value::seeded(i + 1, VALUE_LEN),
            "governed eviction must not lose writes"
        );
    }
    assert!(store.metrics().totals().rematerialized > 0);
    store.shutdown();
}

/// Satellite: `Counters`/aggregate metrics must not drift under
/// read-modify-write cycles — `snapshot_bits` back down on
/// rematerialization, `live_records` consistent with per-key histories,
/// and the governor's incremental occupancy equal to the re-measured
/// ground truth at quiescence.
#[test]
fn counters_stay_consistent_across_evict_rematerialize_compact_cycles() {
    let store = Store::start(
        config(2, ProtocolSpec::Adaptive).with_history(HistoryPolicy::TruncateAfter(8)),
    )
    .unwrap();
    let client = store.client();
    let keys: Vec<String> = (0..12).map(|i| format!("key-{i}")).collect();

    let assert_consistent = |label: &str| {
        let m = store.metrics();
        // Incremental governed occupancy == re-measured ground truth,
        // per shard, at quiescence.
        for s in &m.shards {
            assert_eq!(
                s.governed_bits,
                s.occupancy.total(),
                "{label}: shard {} incremental occupancy drifted",
                s.shard
            );
        }
        // live_records == what the per-key histories actually hold.
        let per_key: u64 = store
            .keys()
            .iter()
            .map(|k| store.key_history(k).unwrap().records.len() as u64)
            .sum();
        assert_eq!(m.live_records(), per_key, "{label}: live_records drifted");
    };

    for cycle in 0..3u64 {
        for (i, key) in keys.iter().enumerate() {
            client
                .write_blocking(key, Value::seeded(cycle * 100 + i as u64 + 1, VALUE_LEN))
                .unwrap();
            client.read_blocking(key).unwrap();
        }
        assert_consistent("after traffic");

        let evicted = store.evict_quiescent();
        assert_eq!(evicted, keys.len(), "all keys quiescent between cycles");
        let m = store.metrics();
        assert_eq!(m.evicted_keys(), keys.len());
        assert!(m.snapshot_bits() > 0, "snapshots hold the evicted state");
        assert_eq!(m.occupancy_bits(), 0, "no live simulations remain");
        assert_consistent("after evict");

        // Rematerialize everything; snapshot_bits must come back DOWN to
        // zero (per-shard, not just in aggregate).
        for key in &keys {
            client.read_blocking(key).unwrap();
        }
        let m = store.metrics();
        assert_eq!(m.evicted_keys(), 0, "every key rematerialized");
        for s in &m.shards {
            assert_eq!(
                s.snapshot_bits, 0,
                "shard {}: snapshot_bits must return to zero after rematerialization",
                s.shard
            );
            assert_eq!(s.evicted_keys, 0);
        }
        assert!(m.occupancy_bits() > 0);
        assert_consistent("after rematerialize");
    }
    let totals = store.metrics().totals();
    assert_eq!(totals.evicted_manual, 3 * keys.len() as u64);
    assert_eq!(totals.rematerialized, 3 * keys.len() as u64);
    assert!(totals.truncated_records > 0, "compaction ran during cycles");
    store.shutdown();
}

/// Satellite: manual eviction racing shutdown must neither panic nor
/// lose a pending completion — every submitted future resolves (result
/// or `ShutDown`), with an evictor hammering `evict_quiescent` through
/// the teardown.
#[test]
fn evict_quiescent_racing_shutdown_never_loses_a_completion() {
    for round in 0..8 {
        let store = Store::start(config(4, ProtocolSpec::Adaptive)).unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Evictor: sweeps continuously, including while `halt` runs.
            s.spawn(|| {
                // audit:allow(atomics-relaxed) — evictor stop flag; the scope join
                // is the synchronization point.
                while !done.load(Ordering::Relaxed) {
                    store.evict_quiescent();
                    std::thread::yield_now();
                }
            });
            // Clients: submit waves of async ops and require every
            // future to resolve.
            let clients: Vec<_> = (0..4)
                .map(|t| {
                    let client = store.client();
                    s.spawn(move || {
                        let mut resolved = 0usize;
                        'outer: for wave in 0..50u64 {
                            let writes: Vec<_> = (0..8u64)
                                .map(|i| {
                                    client.write(
                                        &format!("k{t}-{}", i % 4),
                                        Value::seeded(wave * 100 + i + 1, VALUE_LEN),
                                    )
                                })
                                .collect();
                            for out in join_all(writes) {
                                resolved += 1;
                                match out {
                                    Ok(()) => {}
                                    Err(StoreError::ShutDown) => break 'outer,
                                    Err(other) => panic!("unexpected error: {other}"),
                                }
                            }
                            match block_on(client.read(&format!("k{t}-0"))) {
                                Ok(v) => assert_eq!(v.len(), VALUE_LEN),
                                Err(StoreError::ShutDown) => break 'outer,
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                        resolved
                    })
                })
                .collect();
            // Let traffic and eviction interleave, then tear down from a
            // shared reference while both are still running.
            std::thread::sleep(Duration::from_millis(5 + round));
            store.halt();
            for c in clients {
                assert!(c.join().unwrap() > 0, "clients made progress");
            }
            // audit:allow(atomics-relaxed) — same stop flag; see above.
            done.store(true, Ordering::Relaxed);
        });
        store.shutdown(); // idempotent second teardown
    }
}

/// Same race, with the *governor* doing the evicting (occupancy trigger
/// armed so low it fires constantly) and histories bounded, while
/// shutdown lands mid-traffic.
#[test]
fn governor_racing_shutdown_never_loses_a_completion() {
    for round in 0..8 {
        let store = Store::start(
            config(4, ProtocolSpec::Abd)
                .with_history(HistoryPolicy::TruncateAfter(4))
                .with_eviction(EvictionPolicy::OccupancyAbove {
                    bits: 1,
                    low_watermark: 0,
                }),
        )
        .unwrap();
        std::thread::scope(|s| {
            let clients: Vec<_> = (0..4)
                .map(|t| {
                    let client = store.client();
                    s.spawn(move || {
                        for i in 0..400u64 {
                            let r = client.write_blocking(
                                &format!("g{t}-{}", i % 8),
                                Value::seeded(i + 1, VALUE_LEN),
                            );
                            match r {
                                Ok(()) => {}
                                Err(StoreError::ShutDown) => return,
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(3 + round));
            store.halt();
            for c in clients {
                c.join().unwrap();
            }
        });
        // The eviction machinery really ran before/while stopping.
        assert!(store.metrics().totals().evictions() > 0);
        store.shutdown();
    }
}
