//! Event-driven scheduling and history bounds: work-stealing under
//! hot-key skew, truncation policies keeping checkable histories, and
//! evict/rematerialize of quiescent keys.

use rsb_consistency::{check_strong_regularity, History};
use rsb_registers::RegisterConfig;
use rsb_store::{
    join_all, BatchOp, FlightEventKind, HistoryPolicy, ProtocolSpec, Store, StoreConfig,
};
use rsb_workloads::{KeyedAction, KeyedScenario};

fn reg() -> RegisterConfig {
    RegisterConfig::paper(1, 2, 16).unwrap()
}

/// Keys all placed on shard 0 of a `shards`-wide store, so one home
/// driver owns every ready key and its neighbors can only make progress
/// by stealing.
fn keys_on_shard_zero(store: &Store, count: usize) -> Vec<String> {
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < count {
        let key = format!("pin-{i}");
        if store.shard_of(&key) == 0 {
            keys.push(key);
        }
        i += 1;
    }
    keys
}

fn check_key_histories(store: &Store) {
    for key in store.keys() {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records)
            .expect("recorded key histories are well-formed");
        check_strong_regularity(&history).expect("strong regularity on a recorded key history");
    }
}

#[test]
fn idle_drivers_steal_from_a_hot_shard() {
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Abd, reg())).unwrap();
    let keys = keys_on_shard_zero(&store, 8);
    let client = store.client();
    // Deep pipelining onto shard 0 only: its ready queue stays populated
    // while shards 1–3 are empty, so their drivers' only possible work
    // is stolen from shard 0.
    for round in 0..40u64 {
        let writes: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(k, key)| {
                client.write(
                    key,
                    rsb_coding::Value::seeded(round * 100 + k as u64 + 1, 16),
                )
            })
            .collect();
        for out in join_all(writes) {
            out.unwrap();
        }
    }
    let m = store.metrics();
    assert_eq!(m.totals().writes_completed, 40 * 8);
    let stolen_from_zero = m.shards[0].ops.stolen;
    let steals_by_neighbors: u64 = m.shards[1..].iter().map(|s| s.ops.steals).sum();
    assert_eq!(
        stolen_from_zero, steals_by_neighbors,
        "every steal is attributed to a thief and a victim"
    );
    assert!(
        stolen_from_zero > 0,
        "idle neighbors should have stolen ready keys from the hot shard"
    );
    // Stolen-key histories are still per-key serialized and consistent.
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn thieves_steal_half_a_hot_queue_in_one_batch() {
    // A whole batch of shard-0 keys lands in shard 0's ready queue under
    // one notify, so a woken neighbor finds a deep backlog and its
    // `steal_batch` drains half of it in one lock pass — observable as
    // the `stolen_batches` counter and a `StealBatch` flight event
    // carrying the batch size.
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Abd, reg())).unwrap();
    let keys = keys_on_shard_zero(&store, 8);
    let client = store.client();
    let mut round = 0u64;
    while store.metrics().totals().stolen_batches == 0 && round < 300 {
        let futures = client.submit_batch(
            keys.iter()
                .enumerate()
                .map(|(k, key)| {
                    BatchOp::Write(
                        key.clone(),
                        rsb_coding::Value::seeded(round * 100 + k as u64 + 1, 16),
                    )
                })
                .collect(),
        );
        for f in futures {
            f.wait().unwrap();
        }
        round += 1;
    }
    let totals = store.metrics().totals();
    assert!(
        totals.stolen_batches > 0,
        "no batched steal in {round} rounds of 8-key batches onto one shard"
    );
    assert_eq!(
        totals.stolen, totals.steals,
        "every stolen key is attributed to a thief"
    );
    let events = store.flight_recorder().dump();
    let batch_steal = events
        .iter()
        .find(|e| e.kind == FlightEventKind::StealBatch)
        .expect("a StealBatch event survives in the flight ring");
    assert_eq!(batch_steal.shard, Some(0), "the hot shard is the victim");
    assert!(
        batch_steal.detail >= 2,
        "a batched steal drains at least two keys, got {}",
        batch_steal.detail
    );
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn disabling_work_stealing_pins_keys_to_home_drivers() {
    let store =
        Store::start(StoreConfig::uniform(4, ProtocolSpec::Abd, reg()).with_work_stealing(false))
            .unwrap();
    let keys = keys_on_shard_zero(&store, 4);
    let client = store.client();
    for round in 0..10u64 {
        let writes: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(k, key)| {
                client.write(
                    key,
                    rsb_coding::Value::seeded(round * 100 + k as u64 + 1, 16),
                )
            })
            .collect();
        for out in join_all(writes) {
            out.unwrap();
        }
    }
    let m = store.metrics();
    assert_eq!(m.totals().writes_completed, 40);
    assert_eq!(m.totals().steals, 0, "stealing disabled");
    assert_eq!(m.totals().stolen, 0, "stealing disabled");
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn hot_spot_workload_with_stealing_stays_strongly_regular() {
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg())).unwrap();
    let scenario = KeyedScenario::uniform(8, 30, 16, 0.5, 16, 4242).with_hot_spot(2, 0.8);
    let threads: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                for op in stream {
                    match op.action {
                        KeyedAction::Read => {
                            client.read_blocking(&op.key).unwrap();
                        }
                        KeyedAction::Write(v) => {
                            client.write_blocking(&op.key, v).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    assert_eq!(store.metrics().totals().completed(), 240);
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn truncate_after_n_bounds_live_records_under_sustained_traffic() {
    let bound = 8;
    let store = Store::start(
        StoreConfig::uniform(1, ProtocolSpec::Abd, reg())
            .with_history(HistoryPolicy::TruncateAfter(bound)),
    )
    .unwrap();
    let client = store.client();
    let mut high_water = 0;
    for i in 0..200u64 {
        client
            .write_blocking("sustained", rsb_coding::Value::seeded(i + 1, 16))
            .unwrap();
        client.read_blocking("sustained").unwrap();
        high_water = high_water.max(store.metrics().live_records());
    }
    let m = store.metrics();
    // Bounded, not growing: the driver compacts as soon as a key exceeds
    // the bound, so the high-water mark stays near it (a small slack
    // covers records added between compaction points).
    assert!(
        high_water <= (bound as u64) + 4,
        "live records {high_water} should stay near the bound {bound}"
    );
    assert!(
        m.totals().truncated_records > 300,
        "sustained traffic must keep compacting (dropped {})",
        m.totals().truncated_records
    );
    // The surviving history is still checkable, and the frontier write
    // is still observable.
    assert_eq!(
        client.read_blocking("sustained").unwrap(),
        rsb_coding::Value::seeded(200, 16)
    );
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn truncate_on_quiescence_compacts_between_bursts() {
    let store = Store::start(
        StoreConfig::uniform(2, ProtocolSpec::Adaptive, reg())
            .with_history(HistoryPolicy::TruncateOnQuiescence),
    )
    .unwrap();
    let client = store.client();
    for i in 0..50u64 {
        client
            .write_blocking("bursty", rsb_coding::Value::seeded(i + 1, 16))
            .unwrap();
    }
    let m = store.metrics();
    assert!(
        m.live_records() <= 3,
        "quiescent key keeps only its frontier, got {}",
        m.live_records()
    );
    assert!(m.totals().truncated_records >= 45);
    assert_eq!(
        client.read_blocking("bursty").unwrap(),
        rsb_coding::Value::seeded(50, 16)
    );
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn eviction_under_unbounded_policy_preserves_full_history() {
    // Unbounded promises every OpRecord: evict/rematerialize must carry
    // the whole history through the snapshot, not a compacted frontier.
    let store = Store::start(StoreConfig::uniform(1, ProtocolSpec::Abd, reg())).unwrap();
    let client = store.client();
    for i in 0..10u64 {
        client
            .write_blocking("full", rsb_coding::Value::seeded(i + 1, 16))
            .unwrap();
        client.read_blocking("full").unwrap();
    }
    assert_eq!(store.evict_quiescent(), 1);
    assert_eq!(store.metrics().totals().truncated_records, 0);
    let h = store.key_history("full").unwrap();
    assert_eq!(h.records.len(), 20, "all 20 records survive eviction");
    assert_eq!(
        client.read_blocking("full").unwrap(),
        rsb_coding::Value::seeded(10, 16)
    );
    assert_eq!(store.key_history("full").unwrap().records.len(), 21);
    check_key_histories(&store);
    store.shutdown();
}

#[test]
fn evicted_keys_rematerialize_with_history_intact() {
    let store = Store::start(
        StoreConfig::uniform(2, ProtocolSpec::Abd, reg())
            .with_history(HistoryPolicy::TruncateOnQuiescence),
    )
    .unwrap();
    let client = store.client();
    for i in 0..8u64 {
        client
            .write_blocking(&format!("cold-{i}"), rsb_coding::Value::seeded(i + 1, 16))
            .unwrap();
    }
    let live_occupancy = store.metrics().occupancy_bits();
    assert!(live_occupancy > 0);

    let evicted = store.evict_quiescent();
    assert_eq!(evicted, 8, "all quiescent keys evict");
    let m = store.metrics();
    assert_eq!(m.evicted_keys(), 8);
    assert_eq!(
        m.occupancy_bits(),
        0,
        "evicted keys hold no live simulation"
    );
    assert!(
        m.shards.iter().map(|s| s.snapshot_bits).sum::<u64>() > 0,
        "snapshots retain the register contents"
    );
    // History stays queryable while evicted.
    let h = store
        .key_history("cold-3")
        .expect("evicted key has history");
    assert!(!h.records.is_empty());

    // Operations transparently rematerialize, and the restored register
    // serves the pre-eviction value with a checkable history.
    for i in 0..8u64 {
        assert_eq!(
            client.read_blocking(&format!("cold-{i}")).unwrap(),
            rsb_coding::Value::seeded(i + 1, 16)
        );
    }
    let m = store.metrics();
    assert_eq!(m.evicted_keys(), 0);
    assert_eq!(m.totals().rematerialized, 8);
    check_key_histories(&store);
    store.shutdown();
}
