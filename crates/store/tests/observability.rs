//! Integration tests of the observability surface: per-op phase
//! attribution, the flight recorder, and metric snapshot equality —
//! the invariants an external monitoring system relies on.

use rsb_coding::Value;
use rsb_registers::RegisterConfig;
use rsb_store::{FlightEventKind, ProtocolSpec, Store, StoreConfig};

fn start(shards: usize, value_len: usize) -> Store {
    let reg = RegisterConfig::paper(1, 2, value_len).unwrap();
    Store::start(StoreConfig::uniform(shards, ProtocolSpec::Adaptive, reg)).unwrap()
}

#[test]
fn phase_histograms_cover_every_completed_op_at_quiescence() {
    let store = start(4, 16);
    let client = store.client();
    for i in 0..30u64 {
        let key = format!("k{}", i % 7);
        client.write_blocking(&key, Value::seeded(i, 16)).unwrap();
        client.read_blocking(&key).unwrap();
    }
    let m = store.metrics();
    let completed = m.totals().completed();
    assert_eq!(completed, 60);
    // Every completed op was stamped through both phases exactly once.
    assert_eq!(m.queue_wait().count(), completed);
    assert_eq!(m.execute().count(), completed);
    // End-to-end = read hits + remats + writes; all completions covered.
    assert_eq!(m.end_to_end_latency().count(), completed);
    assert_eq!(m.write_latency().count(), 30);
    // Loopback never touches the wire path.
    assert_eq!(m.wire().count(), 0);
    // Per-shard, the same closure holds.
    for sh in &m.shards {
        assert_eq!(sh.queue_wait.count(), sh.ops.completed());
        assert_eq!(sh.execute.count(), sh.ops.completed());
    }
    store.shutdown();
}

#[test]
fn phase_sums_do_not_exceed_end_to_end_totals() {
    // queue_wait + execute for one op can never exceed its end-to-end
    // latency (they partition submit → completion); at the aggregate
    // level the histogram *sums* must respect the same direction.
    let store = start(2, 16);
    let client = store.client();
    for i in 0..40u64 {
        client
            .write_blocking(&format!("k{}", i % 5), Value::seeded(i, 16))
            .unwrap();
    }
    let m = store.metrics();
    let approx_sum = |h: &rsb_store::LatencyHistogram| -> u128 {
        // Bucket lower bounds give a conservative (under-)estimate.
        h.buckets()
            .map(|(lo, _, c)| u128::from(lo) * u128::from(c))
            .sum()
    };
    let approx_sum_hi = |h: &rsb_store::LatencyHistogram| -> u128 {
        h.buckets()
            .map(|(_, hi, c)| u128::from(hi) * u128::from(c))
            .sum()
    };
    let phases_lo = approx_sum(&m.queue_wait()) + approx_sum(&m.execute());
    let e2e_hi = approx_sum_hi(&m.end_to_end_latency());
    assert!(
        phases_lo <= e2e_hi,
        "phase lower-bound sum {phases_lo} exceeded end-to-end upper-bound sum {e2e_hi}"
    );
    store.shutdown();
}

#[test]
fn recorder_captures_submissions_gaplessly_before_wrap() {
    let store = start(2, 16);
    let client = store.client();
    for i in 0..10u64 {
        client
            .write_blocking(&format!("k{i}"), Value::seeded(i, 16))
            .unwrap();
        client.read_blocking(&format!("k{i}")).unwrap();
    }
    let rec = store.flight_recorder();
    assert!(rec.recorded() >= 20);
    let events = rec.dump();
    // Nothing wrapped (default capacity is 1024), so the dump is the
    // complete, gapless event history starting at sequence 0.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expect: Vec<u64> = (0..rec.recorded()).collect();
    assert_eq!(seqs, expect, "gapless sequence numbers before wrap");
    let submits_w = events
        .iter()
        .filter(|e| e.kind == FlightEventKind::SubmitWrite)
        .count();
    let submits_r = events
        .iter()
        .filter(|e| e.kind == FlightEventKind::SubmitRead)
        .count();
    assert_eq!(submits_w, 10);
    assert_eq!(submits_r, 10);
    // Write submissions carry the payload size as their detail.
    for e in &events {
        if e.kind == FlightEventKind::SubmitWrite {
            assert_eq!(e.detail, 16);
            assert!(e.shard.is_some());
        }
    }
    store.shutdown();
}

#[test]
fn recorder_overwrites_oldest_when_capacity_is_tiny() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let cfg = StoreConfig::uniform(2, ProtocolSpec::Adaptive, reg).with_recorder_capacity(4);
    let store = Store::start(cfg).unwrap();
    let client = store.client();
    for i in 0..25u64 {
        client
            .write_blocking(&format!("k{}", i % 3), Value::seeded(i, 16))
            .unwrap();
    }
    let rec = store.flight_recorder();
    assert_eq!(rec.capacity(), 4);
    // At least the 25 submissions (plus steals/compactions) landed.
    let total = rec.recorded();
    assert!(total >= 25, "recorded {total}");
    let events = rec.dump();
    assert!(events.len() <= 4);
    // The survivors are the *newest* events, in order.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    for pair in seqs.windows(2) {
        assert!(pair[0] < pair[1]);
    }
    assert_eq!(*seqs.last().unwrap(), total - 1);
    assert!(
        *seqs.first().unwrap() >= total - 4,
        "oldest events were overwritten: {seqs:?} of {total}"
    );
    store.shutdown();
}

#[test]
fn eviction_and_rematerialization_leave_recorder_events() {
    let store = start(1, 16);
    let client = store.client();
    client.write_blocking("cold", Value::seeded(1, 16)).unwrap();
    assert_eq!(store.evict_quiescent(), 1);
    // Reading the evicted key forces a rematerialization.
    assert_eq!(client.read_blocking("cold").unwrap(), Value::seeded(1, 16));
    let events = store.flight_recorder().dump();
    let evicts = events
        .iter()
        .filter(|e| e.kind == FlightEventKind::EvictManual)
        .count();
    let remats = events
        .iter()
        .filter(|e| e.kind == FlightEventKind::Rematerialize)
        .count();
    assert_eq!(evicts, 1, "events: {events:?}");
    assert_eq!(remats, 1, "events: {events:?}");
    // The eviction event's detail is the snapshot size in bits.
    let evict = events
        .iter()
        .find(|e| e.kind == FlightEventKind::EvictManual)
        .unwrap();
    assert!(evict.detail > 0);
    assert_eq!(evict.shard, Some(0));
    store.shutdown();
}

#[test]
fn loopback_stats_equal_in_process_metrics() {
    let store = start(3, 16);
    let client = store.client();
    for i in 0..12u64 {
        client
            .write_blocking(&format!("k{i}"), Value::seeded(i, 16))
            .unwrap();
    }
    // Two quiescent snapshots are equal — the regression this guards:
    // a histogram decoded/cloned as "empty Vec" must equal one drained
    // to all-zero buckets.
    assert_eq!(store.metrics(), store.metrics());
    assert_eq!(client.stats().unwrap(), store.metrics());
    store.shutdown();
}

#[test]
fn prometheus_rendering_carries_counts_and_histograms() {
    let store = start(2, 16);
    let client = store.client();
    for i in 0..8u64 {
        client
            .write_blocking(&format!("k{i}"), Value::seeded(i, 16))
            .unwrap();
        client.read_blocking(&format!("k{i}")).unwrap();
    }
    let text = store.metrics().render_prometheus();
    assert!(text.contains("rsb_store_reads_completed_total 8"));
    assert!(text.contains("rsb_store_writes_completed_total 8"));
    assert!(text.contains("rsb_store_queue_wait_ns_count 16"));
    assert!(text.contains("rsb_store_execute_ns_count 16"));
    assert!(text.contains("rsb_store_write_latency_ns_count 8"));
    assert!(text.contains("le=\"+Inf\""));
    // Every histogram line is cumulative: the +Inf bucket equals _count.
    for name in ["queue_wait_ns", "execute_ns", "write_latency_ns"] {
        let inf = text
            .lines()
            .find(|l| l.starts_with(&format!("rsb_store_{name}_bucket")) && l.contains("+Inf"))
            .unwrap_or_else(|| panic!("missing +Inf bucket for {name}"));
        let count_line = text
            .lines()
            .find(|l| l.starts_with(&format!("rsb_store_{name}_count")))
            .unwrap();
        let inf_v: u64 = inf.rsplit(' ').next().unwrap().parse().unwrap();
        let count_v: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(inf_v, count_v);
    }
    store.shutdown();
}
