//! Differential tests for the GF(256) bulk kernels and fuzz round-trips
//! through the contiguous encode/decode paths.
//!
//! The kernel tests are the tail/alignment bug trap: every available kernel
//! must match the scalar reference byte-for-byte for **all 256
//! coefficients**, every length in `0..=64` (crossing the 8/16/32-byte
//! chunk boundaries and exercising every possible tail length), and a range
//! of unaligned slice offsets (vector kernels use unaligned loads; a
//! misaligned-head bug would only show up here).

use rsb_coding::gf256::{self, Kernel};
use rsb_coding::{Code, Rateless, ReedSolomon, Value};

/// SplitMix64 — the deterministic fuzz driver used across the workspace.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fill_random(buf: &mut [u8], state: &mut u64) {
    for chunk in buf.chunks_mut(8) {
        let w = splitmix64(state).to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&w[..n]);
    }
}

const MAX_LEN: usize = 64;
const OFFSETS: [usize; 6] = [0, 1, 2, 3, 5, 7];

#[test]
fn mul_acc_kernels_match_scalar_exhaustively() {
    let kernels = gf256::available_kernels();
    assert!(kernels.len() >= 2, "scalar and swar are always available");
    let mut state = 0x5eed_0001u64;
    // One oversized backing pair; sub-slicing at varying offsets produces
    // genuinely unaligned starting addresses.
    let mut src_base = vec![0u8; MAX_LEN + *OFFSETS.last().unwrap()];
    let mut dst_base = vec![0u8; MAX_LEN + *OFFSETS.last().unwrap()];
    fill_random(&mut src_base, &mut state);
    fill_random(&mut dst_base, &mut state);
    let mut expected = [0u8; MAX_LEN];
    let mut actual = [0u8; MAX_LEN];
    for coeff in 0..=255u8 {
        for len in 0..=MAX_LEN {
            for off in OFFSETS {
                let src = &src_base[off..off + len];
                let dst = &dst_base[off..off + len];
                expected[..len].copy_from_slice(dst);
                gf256::mul_acc_with(Kernel::Scalar, &mut expected[..len], src, coeff);
                for &kernel in &kernels {
                    actual[..len].copy_from_slice(dst);
                    gf256::mul_acc_with(kernel, &mut actual[..len], src, coeff);
                    assert_eq!(
                        actual[..len],
                        expected[..len],
                        "mul_acc {kernel} vs scalar: coeff={coeff} len={len} off={off}"
                    );
                }
            }
        }
    }
}

#[test]
fn scale_kernels_match_scalar_exhaustively() {
    let kernels = gf256::available_kernels();
    let mut state = 0x5eed_0002u64;
    let mut base = vec![0u8; MAX_LEN + *OFFSETS.last().unwrap()];
    fill_random(&mut base, &mut state);
    let mut expected = [0u8; MAX_LEN];
    let mut actual = [0u8; MAX_LEN];
    for coeff in 0..=255u8 {
        for len in 0..=MAX_LEN {
            for off in OFFSETS {
                let buf = &base[off..off + len];
                expected[..len].copy_from_slice(buf);
                gf256::scale_with(Kernel::Scalar, &mut expected[..len], coeff);
                for &kernel in &kernels {
                    actual[..len].copy_from_slice(buf);
                    gf256::scale_with(kernel, &mut actual[..len], coeff);
                    assert_eq!(
                        actual[..len],
                        expected[..len],
                        "scale {kernel} vs scalar: coeff={coeff} len={len} off={off}"
                    );
                }
            }
        }
    }
}

#[test]
fn mul_acc_multi_kernels_match_scalar_exhaustively() {
    // The interleaved multi-row kernels must agree with row-at-a-time scalar
    // for all 256 coefficients (placed in every row position), every length
    // crossing the vector strides, unaligned source offsets, and every row
    // count up to MAX_INTERLEAVED_ROWS + 1 (one full group plus a rump).
    let kernels = gf256::available_kernels();
    let mut state = 0x5eed_0005u64;
    let max_rows = gf256::MAX_INTERLEAVED_ROWS + 1;
    let mut src_base = vec![0u8; MAX_LEN + *OFFSETS.last().unwrap()];
    fill_random(&mut src_base, &mut state);
    let mut dst0 = vec![vec![0u8; MAX_LEN]; max_rows];
    for row in &mut dst0 {
        fill_random(row, &mut state);
    }
    for coeff in 0..=255u8 {
        for rows in 1..=max_rows {
            // The swept coefficient rotates through every row position;
            // remaining rows get fixed coefficients covering 0/1/general.
            let fillers = [0u8, 1, 0x1d, 87, 255];
            let pos = coeff as usize % rows;
            let mut coeffs = vec![0u8; rows];
            for (r, c) in coeffs.iter_mut().enumerate() {
                *c = if r == pos {
                    coeff
                } else {
                    fillers[r % fillers.len()]
                };
            }
            for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 48, 63, MAX_LEN] {
                for off in OFFSETS {
                    let src = &src_base[off..off + len];
                    // Reference: sequential scalar mul_acc per row.
                    let mut expected: Vec<Vec<u8>> =
                        dst0[..rows].iter().map(|r| r[..len].to_vec()).collect();
                    for (row, &c) in expected.iter_mut().zip(&coeffs) {
                        gf256::mul_acc_with(Kernel::Scalar, row, src, c);
                    }
                    for &kernel in &kernels {
                        let mut actual: Vec<Vec<u8>> =
                            dst0[..rows].iter().map(|r| r[..len].to_vec()).collect();
                        let mut views: Vec<&mut [u8]> =
                            actual.iter_mut().map(Vec::as_mut_slice).collect();
                        gf256::mul_acc_multi_with(kernel, &mut views, src, &coeffs);
                        assert_eq!(
                            actual, expected,
                            "mul_acc_multi {kernel} vs scalar: coeff={coeff} \
                             rows={rows} len={len} off={off}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kernels_handle_large_buffers_with_ragged_tails() {
    // A second net above the exhaustive small-length sweep: sizes around
    // and beyond the 32-byte AVX2 stride, including a multi-KiB buffer.
    let kernels = gf256::available_kernels();
    let mut state = 0x5eed_0003u64;
    for len in [31usize, 32, 33, 47, 63, 64, 65, 127, 255, 1000, 4096, 4127] {
        let mut src = vec![0u8; len];
        let mut dst0 = vec![0u8; len];
        fill_random(&mut src, &mut state);
        fill_random(&mut dst0, &mut state);
        for coeff in [0u8, 1, 2, 0x1d, 87, 255] {
            let mut expected = dst0.clone();
            gf256::mul_acc_with(Kernel::Scalar, &mut expected, &src, coeff);
            for &kernel in &kernels {
                let mut actual = dst0.clone();
                gf256::mul_acc_with(kernel, &mut actual, &src, coeff);
                assert_eq!(actual, expected, "{kernel} coeff={coeff} len={len}");
            }
        }
    }
}

#[test]
fn dispatched_mul_acc_is_linear() {
    // dst ^= a·src then dst ^= b·src  ==  dst ^= (a^b)·src, whatever kernel
    // dispatch picked — a sanity net over the dispatcher's fast paths.
    let mut state = 0x5eed_0004u64;
    let mut src = vec![0u8; 777];
    fill_random(&mut src, &mut state);
    for (a, b) in [(3u8, 200u8), (1, 1), (0, 99), (255, 254)] {
        let mut d1 = vec![0u8; src.len()];
        gf256::mul_acc(&mut d1, &src, a);
        gf256::mul_acc(&mut d1, &src, b);
        let mut d2 = vec![0u8; src.len()];
        gf256::mul_acc(&mut d2, &src, a ^ b);
        assert_eq!(d1, d2, "a={a} b={b}");
    }
}

#[test]
fn reed_solomon_contiguous_roundtrip_fuzz() {
    let mut state = 0xc0de_0001u64;
    for round in 0..200 {
        let k = 1 + (splitmix64(&mut state) as usize % 8);
        let n = k + (splitmix64(&mut state) as usize % 9);
        let len = 1 + (splitmix64(&mut state) as usize % 300);
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(splitmix64(&mut state), len);

        // Contiguous product and per-block encode must agree.
        let blocks = code.encode(&v);
        let mut buf = vec![0u8; n * code.shard_len()];
        code.encode_into(&v, &mut buf).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(
                &buf[i * code.shard_len()..(i + 1) * code.shard_len()],
                b.data(),
                "round {round}: encode_into disagrees at block {i} (k={k} n={n} len={len})"
            );
        }

        // Any k distinct blocks decode (random subset via partial shuffle).
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + (splitmix64(&mut state) as usize % (n - i));
            order.swap(i, j);
        }
        let subset: Vec<_> = order[..k].iter().map(|&i| blocks[i].clone()).collect();
        assert_eq!(
            code.decode(&subset).unwrap(),
            v,
            "round {round}: decode failed for subset {:?} (k={k} n={n} len={len})",
            &order[..k]
        );
    }
}

#[test]
fn rateless_contiguous_roundtrip_fuzz() {
    let mut state = 0xc0de_0002u64;
    for round in 0..100 {
        let k = 1 + (splitmix64(&mut state) as usize % 8);
        let len = 1 + (splitmix64(&mut state) as usize % 200);
        let code = Rateless::new(k, len).unwrap();
        let v = Value::seeded(splitmix64(&mut state), len);
        // k distinct random indices (plus slack for unlucky dependence).
        let mut indices = std::collections::BTreeSet::new();
        while indices.len() < k + 2 {
            indices.insert(splitmix64(&mut state) as u32 % 1_000_000);
        }
        let blocks: Vec<_> = indices
            .iter()
            .map(|&i| code.encode_block(&v, i).unwrap())
            .collect();
        assert_eq!(
            code.decode(&blocks).unwrap(),
            v,
            "round {round}: k={k} len={len} indices={indices:?}"
        );
    }
}
