//! Erasure-coding substrate for the PODC 2016 paper *"Space Bounds for
//! Reliable Storage: Fundamental Limits of Coding"* (Spiegelman, Cassuto,
//! Chockler, Keidar).
//!
//! The paper models storage algorithms that manipulate *code blocks* of a
//! written value through two oracles (its Definition 1): an encoder oracle
//! `oracleE` exposing `get(i) = E(v, i)` and a decoder oracle `oracleD`
//! exposing `push(e, i)` / `done(i)`. This crate provides:
//!
//! * [`gf256`] — arithmetic in GF(2⁸), the field under every code here;
//! * [`matrix`] — matrices over GF(2⁸) with Gauss–Jordan inversion;
//! * [`Value`] / [`Block`] — the paper's `V` (with `D = log₂|V|` bits) and
//!   `E` domains, with per-block bit accounting (`|e|`);
//! * [`ReedSolomon`] — systematic MDS `k`-of-`n` codes (any `k` blocks
//!   reconstruct the value, each block `D/k` bits);
//! * [`Replication`] — the degenerate `k = 1` code (full replicas);
//! * [`Rateless`] — a random-linear fountain code over the unbounded block
//!   index domain `N`, capturing the paper's rateless-code remark;
//! * [`EncoderOracle`] / [`DecoderOracle`] — Definition 1 made executable,
//!   including the bookkeeping needed by the lower-bound *source function*
//!   (Definition 4);
//! * the [`Code`] trait, whose contract includes the paper's *symmetric
//!   encoding* assumption (Definition 3): block sizes depend only on the
//!   block index, never on the value.
//!
//! # Example
//!
//! ```
//! use rsb_coding::{Code, ReedSolomon, Value};
//!
//! # fn main() -> Result<(), rsb_coding::CodingError> {
//! // A 2-of-5 code over 1 KiB values: each block is D/2 bits.
//! let code = ReedSolomon::new(2, 5, 1024)?;
//! let value = Value::from_bytes(vec![7u8; 1024]);
//! let blocks = code.encode(&value);
//! // Any k = 2 blocks decode back to the value.
//! let decoded = code.decode(&[blocks[4].clone(), blocks[1].clone()])?;
//! assert_eq!(decoded, value);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the GF(256) SIMD kernels (`gf256/simd.rs`)
// opt in locally with a documented safety contract; everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod matrix;

mod block;
mod oracle;
mod rateless;
mod reed_solomon;
mod replication;
mod scheme;
mod value;

pub use block::{Block, BlockIndex};
pub use oracle::{DecoderOracle, EncoderOracle, OracleEvent};
pub use rateless::Rateless;
pub use reed_solomon::ReedSolomon;
pub use replication::Replication;
pub use scheme::{Code, CodeKind, CodingError};
pub use value::Value;
