//! The value domain `V` of the emulated register.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A register value `v ∈ V`.
///
/// The paper measures data size as `D = log₂|V|` bits; we realize `V` as the
/// set of byte strings of a fixed length `D/8`, so a [`Value`] of `len`
/// bytes has `D = 8·len` bits. Values are cheaply cloneable (refcounted).
///
/// ```
/// use rsb_coding::Value;
/// let v = Value::from_bytes(vec![1, 2, 3, 4]);
/// assert_eq!(v.size_bits(), 32);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// Creates a zero-filled value of `len` bytes — a convenient `v₀`.
    pub fn zeroed(len: usize) -> Self {
        Value(Bytes::from(vec![0u8; len]))
    }

    /// Creates a deterministic pseudo-random value of `len` bytes from a
    /// seed, for workloads and tests. Distinct seeds give distinct values
    /// (for `len ≥ 8` the seed is embedded verbatim in the prefix).
    pub fn seeded(seed: u64, len: usize) -> Self {
        let mut out = Vec::with_capacity(len);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for i in 0..len {
            if i < 8 {
                out.push((seed >> (8 * i)) as u8);
            } else {
                // SplitMix64 step.
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                out.push((z ^ (z >> 31)) as u8);
            }
        }
        Value(Bytes::from(out))
    }

    /// The raw bytes of the value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes (`D / 8`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty (a degenerate zero-bit domain).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The paper's `D`: the size of the value in bits.
    pub fn size_bits(&self) -> u64 {
        8 * self.0.len() as u64
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print a short fingerprint, not kilobytes of data.
        let prefix: Vec<u8> = self.0.iter().take(8).copied().collect();
        write!(f, "Value({} B, {:02x?}…)", self.0.len(), prefix)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::from_bytes(v)
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::from_bytes(v.to_vec())
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bits_is_eight_per_byte() {
        assert_eq!(Value::zeroed(128).size_bits(), 1024);
        assert_eq!(Value::from_bytes(vec![]).size_bits(), 0);
    }

    #[test]
    fn seeded_values_are_deterministic_and_distinct() {
        let a = Value::seeded(1, 64);
        let b = Value::seeded(1, 64);
        let c = Value::seeded(2, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_distinct_for_small_lengths() {
        // Seeds below 2^(8·len) embed verbatim, so they stay distinct.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200u64 {
            assert!(seen.insert(Value::seeded(seed, 2)));
        }
    }

    #[test]
    fn debug_is_short() {
        let v = Value::zeroed(4096);
        let dbg = format!("{v:?}");
        assert!(dbg.len() < 100);
        assert!(dbg.contains("4096"));
    }

    #[test]
    fn conversions() {
        let v: Value = vec![1u8, 2, 3].into();
        assert_eq!(v.as_ref(), &[1, 2, 3]);
        let w: Value = (&[9u8, 9][..]).into();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }
}
