//! A rateless random-linear fountain code over unbounded block indices.
//!
//! The paper chooses `N` as the domain of block numbers specifically so that
//! *rateless* codes — whose encoders can generate a limitless block sequence
//! — are captured by the model (its citation [13]). This module implements
//! the standard random-linear fountain over GF(2⁸): block `i`'s coefficient
//! vector is derived deterministically from `i`, the first `k` indices are
//! systematic, and decoding performs incremental Gaussian elimination until
//! rank `k` is reached.

use crate::matrix::Matrix;
use crate::scheme::{shard_slice, validate_params};
use crate::{gf256, Block, BlockIndex, Code, CodeKind, CodingError, Value};

/// A rateless random-linear code with reconstruction threshold `k`.
///
/// Unlike [`crate::ReedSolomon`], `k` distinct blocks decode only with high
/// probability (non-systematic coefficient vectors may be linearly
/// dependent); [`Rateless::decode`] reports [`CodingError::NotEnoughBlocks`]
/// when the supplied set has rank `< k`, and callers simply fetch more
/// blocks — the defining workflow of fountain codes.
///
/// ```
/// use rsb_coding::{Code, Rateless, Value};
/// # fn main() -> Result<(), rsb_coding::CodingError> {
/// let code = Rateless::new(3, 60)?;
/// let v = Value::seeded(4, 60);
/// // Indices far beyond any fixed rate are fine:
/// let blocks: Vec<_> = [0u32, 1000, 123_456, 7, 99]
///     .iter()
///     .map(|&i| code.encode_block(&v, i))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(code.decode(&blocks)?, v);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Rateless {
    k: usize,
    value_len: usize,
    shard_len: usize,
}

impl std::fmt::Debug for Rateless {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Rateless(k={}, {} B values, {} B blocks)",
            self.k, self.value_len, self.shard_len
        )
    }
}

/// SplitMix64: the deterministic per-index coefficient source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rateless {
    /// Creates a rateless code with threshold `k` for `value_len`-byte
    /// values.
    ///
    /// # Errors
    ///
    /// Fails if `k = 0`, `k > 256`, or `value_len = 0`.
    pub fn new(k: usize, value_len: usize) -> Result<Self, CodingError> {
        validate_params(k, k, value_len)?;
        Ok(Rateless {
            k,
            value_len,
            shard_len: value_len.div_ceil(k),
        })
    }

    /// The deterministic coefficient vector for block `index`.
    ///
    /// Indices `0..k` are systematic unit vectors; later indices derive a
    /// nonzero pseudo-random vector from the index.
    pub fn coefficients(&self, index: BlockIndex) -> Vec<u8> {
        let mut coeffs = vec![0u8; self.k];
        if (index as usize) < self.k {
            coeffs[index as usize] = 1;
            return coeffs;
        }
        let mut state = (index as u64) ^ 0xd1b5_4a32_d192_ed03;
        loop {
            for chunk in coeffs.chunks_mut(8) {
                let word = splitmix64(&mut state);
                for (j, c) in chunk.iter_mut().enumerate() {
                    *c = (word >> (8 * j)) as u8;
                }
            }
            if coeffs.iter().any(|&c| c != 0) {
                return coeffs;
            }
        }
    }
}

impl Code for Rateless {
    fn kind(&self) -> CodeKind {
        CodeKind::Rateless
    }

    fn reconstruction_threshold(&self) -> usize {
        self.k
    }

    /// Rateless codes have no fixed rate; the primary set is taken to be
    /// the systematic prefix plus `k` parity blocks (callers may request any
    /// `u32` index directly).
    fn block_count(&self) -> usize {
        2 * self.k
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn block_size_bits(&self, _index: BlockIndex) -> u64 {
        8 * self.shard_len as u64
    }

    fn encode_block(&self, value: &Value, index: BlockIndex) -> Result<Block, CodingError> {
        if value.len() != self.value_len {
            return Err(CodingError::WrongValueLength {
                expected: self.value_len,
                actual: value.len(),
            });
        }
        // No re-sharding: read shard views of the value in place (see
        // `scheme::shard_slice`); systematic indices are a straight copy.
        let bytes = value.as_bytes();
        let mut out = vec![0u8; self.shard_len];
        if (index as usize) < self.k {
            let src = shard_slice(bytes, self.shard_len, index as usize);
            out[..src.len()].copy_from_slice(src);
        } else {
            let coeffs = self.coefficients(index);
            for (j, &c) in coeffs.iter().enumerate() {
                let src = shard_slice(bytes, self.shard_len, j);
                gf256::mul_acc(&mut out[..src.len()], src, c);
            }
        }
        Ok(Block::new(index, out))
    }

    fn decode(&self, blocks: &[Block]) -> Result<Value, CodingError> {
        // Collect distinct-index blocks with their coefficient vectors.
        let mut rows: Vec<Vec<u8>> = Vec::new();
        let mut payloads: Vec<&Block> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for b in blocks {
            if b.len() != self.shard_len {
                return Err(CodingError::WrongBlockSize {
                    index: b.index(),
                    expected: self.shard_len,
                    actual: b.len(),
                });
            }
            if seen.insert(b.index()) {
                rows.push(self.coefficients(b.index()));
                payloads.push(b);
            }
        }
        if rows.len() < self.k {
            return Err(CodingError::NotEnoughBlocks {
                needed: self.k,
                got: rows.len(),
            });
        }
        // Pick k linearly independent rows by rank-extending greedily.
        // Independence is tested against an incrementally maintained
        // reduced (echelon) basis — O(k²) per candidate instead of
        // re-running full Gaussian elimination on every prefix.
        let mut chosen_rows: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        let mut chosen_blocks: Vec<&Block> = Vec::with_capacity(self.k);
        let mut basis: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        let mut pivots: Vec<usize> = Vec::with_capacity(self.k);
        for (row, b) in rows.into_iter().zip(payloads) {
            let mut reduced = row.clone();
            for (bi, &pc) in basis.iter().zip(pivots.iter()) {
                let factor = reduced[pc];
                if factor != 0 {
                    gf256::mul_acc(&mut reduced, bi, factor);
                }
            }
            let Some(pivot) = reduced.iter().position(|&c| c != 0) else {
                continue; // linearly dependent on the rows chosen so far
            };
            let pivot_inv = gf256::inv(reduced[pivot]);
            gf256::scale(&mut reduced, pivot_inv);
            basis.push(reduced);
            pivots.push(pivot);
            chosen_rows.push(row);
            chosen_blocks.push(b);
            if chosen_rows.len() == self.k {
                break;
            }
        }
        if chosen_rows.len() < self.k {
            // Enough blocks but linearly dependent: still ⊥.
            return Err(CodingError::NotEnoughBlocks {
                needed: self.k,
                got: chosen_rows.len(),
            });
        }
        let coeff = Matrix::from_rows(chosen_rows);
        let inv = coeff
            .inverse()
            .expect("rows were chosen linearly independent");
        // One contiguous buffer for all decoded shards, truncated to the
        // value length — no per-shard vectors, no reassembly pass.
        let mut data = vec![0u8; self.k * self.shard_len];
        for (s, out) in data.chunks_exact_mut(self.shard_len).enumerate() {
            for (j, b) in chosen_blocks.iter().enumerate() {
                gf256::mul_acc(out, b.data(), inv.get(s, j));
            }
        }
        data.truncate(self.value_len);
        Ok(Value::from_bytes(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::shard;

    #[test]
    fn systematic_prefix() {
        let code = Rateless::new(4, 40).unwrap();
        let v = Value::seeded(11, 40);
        let shards = shard(&v, 4);
        for i in 0..4u32 {
            let b = code.encode_block(&v, i).unwrap();
            assert_eq!(b.data(), &shards[i as usize][..]);
        }
    }

    #[test]
    fn decode_from_systematic() {
        let code = Rateless::new(3, 30).unwrap();
        let v = Value::seeded(8, 30);
        let blocks: Vec<Block> = (0..3u32)
            .map(|i| code.encode_block(&v, i).unwrap())
            .collect();
        assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    #[test]
    fn decode_from_high_indices() {
        let code = Rateless::new(4, 64).unwrap();
        let v = Value::seeded(3, 64);
        let blocks: Vec<Block> = [1_000u32, 2_000, 30_000, 400_000, 5_000_000]
            .iter()
            .map(|&i| code.encode_block(&v, i).unwrap())
            .collect();
        assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    #[test]
    fn coefficients_deterministic_and_nonzero() {
        let code = Rateless::new(5, 10).unwrap();
        for i in [0u32, 4, 5, 77, 1_000_000] {
            let a = code.coefficients(i);
            let b = code.coefficients(i);
            assert_eq!(a, b);
            assert!(a.iter().any(|&c| c != 0));
        }
    }

    #[test]
    fn insufficient_rank_reports_bottom() {
        let code = Rateless::new(2, 8).unwrap();
        let v = Value::seeded(1, 8);
        let b0 = code.encode_block(&v, 0).unwrap();
        assert!(matches!(
            code.decode(&[b0.clone(), b0]).unwrap_err(),
            CodingError::NotEnoughBlocks { needed: 2, got: 1 }
        ));
    }

    #[test]
    fn mixed_systematic_and_random_blocks() {
        let code = Rateless::new(4, 17).unwrap();
        let v = Value::seeded(21, 17);
        let blocks: Vec<Block> = [0u32, 9, 2, 1234]
            .iter()
            .map(|&i| code.encode_block(&v, i).unwrap())
            .collect();
        assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    #[test]
    fn size_symmetry_across_indices_and_values() {
        let code = Rateless::new(3, 31).unwrap();
        let expected = 8 * 31u64.div_ceil(3);
        for seed in 0..3 {
            let v = Value::seeded(seed, 31);
            for i in [0u32, 1, 2, 3, 500, 100_000] {
                assert_eq!(code.encode_block(&v, i).unwrap().size_bits(), expected);
                assert_eq!(code.block_size_bits(i), expected);
            }
        }
    }
}
