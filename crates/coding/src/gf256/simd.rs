//! x86-64 `pshufb` and GFNI kernels for bulk GF(256) multiplication.
//!
//! The nibble kernels evaluate the per-coefficient split tables
//! ([`MUL_LO`] / [`MUL_HI`]) as vector shuffles: the 16-entry table is the
//! shuffle *source* and the data nibbles are the shuffle *indices*, so one
//! `pshufb` performs 16 (SSSE3) or 2×16 (AVX2) table lookups. The GFNI
//! kernel instead broadcasts the coefficient's precomputed 8×8 bit-matrix
//! ([`MUL_MATRIX`]) and applies it with one `vgf2p8affineqb` per 32 bytes
//! — the affine form, not `vgf2p8mulb`, because the plain multiply
//! hardwires the AES polynomial 0x11B while this crate's field is 0x11D.
//! Tails shorter than a vector fall back to the nibble tables one byte at
//! a time, which is what the exhaustive differential tests pin down
//! (`tests/kernels.rs`).
//!
//! The `*_multi` variants interleave up to
//! [`MAX_INTERLEAVED_ROWS`](super::MAX_INTERLEAVED_ROWS) destination rows:
//! each 32/16-byte source chunk is loaded once and multiplied into every
//! row of the group, so encode passes that used to re-read the source per
//! parity row now pay its memory traffic once per group.
//!
//! This module is the only place in the crate that uses `unsafe`: raw
//! pointer loads/stores for the unaligned vector accesses, plus the calls
//! into `#[target_feature]` functions. Every entry point is a safe wrapper
//! whose caller contract — "only dispatch here after runtime feature
//! detection" — is enforced by `gf256::dispatch_*` and `kernel_available`.
#![allow(unsafe_code)]

use super::{MAX_INTERLEAVED_ROWS, MUL_HI, MUL_LO, MUL_MATRIX};
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_gf2p8affine_epi64_epi8,
    _mm256_loadu_si256, _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_setzero_si256,
    _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256, _mm_and_si128,
    _mm_loadu_si128, _mm_set1_epi8, _mm_setzero_si128, _mm_shuffle_epi8, _mm_srli_epi64,
    _mm_storeu_si128, _mm_xor_si128,
};

/// `dst[i] ^= coeff · src[i]` via SSSE3 `pshufb`, 16 bytes per step.
///
/// Caller must have verified `ssse3` support (the dispatcher has).
pub(super) fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(is_x86_feature_detected!("ssse3"));
    // SAFETY: the ssse3 target feature was runtime-verified by the caller.
    unsafe { mul_acc_ssse3_impl(dst, src, coeff) }
}

/// `buf[i] = coeff · buf[i]` via SSSE3 `pshufb`.
pub(super) fn scale_ssse3(buf: &mut [u8], coeff: u8) {
    debug_assert!(is_x86_feature_detected!("ssse3"));
    // SAFETY: the ssse3 target feature was runtime-verified by the caller.
    unsafe { scale_ssse3_impl(buf, coeff) }
}

/// `dst[i] ^= coeff · src[i]` via AVX2 `vpshufb`, 32 bytes per step.
pub(super) fn mul_acc_avx2(dst: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: the avx2 target feature was runtime-verified by the caller.
    unsafe { mul_acc_avx2_impl(dst, src, coeff) }
}

/// `buf[i] = coeff · buf[i]` via AVX2 `vpshufb`.
pub(super) fn scale_avx2(buf: &mut [u8], coeff: u8) {
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: the avx2 target feature was runtime-verified by the caller.
    unsafe { scale_avx2_impl(buf, coeff) }
}

/// Loads a 16-entry nibble table into a 128-bit register.
#[target_feature(enable = "ssse3")]
fn load_table_128(table: &[u8; 16]) -> __m128i {
    // SAFETY: `table` is exactly 16 readable bytes; loadu has no alignment
    // requirement.
    unsafe { _mm_loadu_si128(table.as_ptr().cast()) }
}

/// `product = pshufb(lo, x & 0xf) ^ pshufb(hi, (x >> 4) & 0xf)`.
#[target_feature(enable = "ssse3")]
fn product_128(x: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
    let nib = _mm_set1_epi8(0x0f);
    let l = _mm_shuffle_epi8(lo, _mm_and_si128(x, nib));
    let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(x), nib));
    _mm_xor_si128(l, h)
}

#[target_feature(enable = "ssse3")]
fn mul_acc_ssse3_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_128(lo_t);
    let hi = load_table_128(hi_t);
    let mut dc = dst.chunks_exact_mut(16);
    let mut sc = src.chunks_exact(16);
    for (d, s) in (&mut dc).zip(&mut sc) {
        // SAFETY: both chunks are exactly 16 bytes; unaligned load/store.
        unsafe {
            let x = _mm_loadu_si128(s.as_ptr().cast());
            let cur = _mm_loadu_si128(d.as_ptr().cast());
            let res = _mm_xor_si128(cur, product_128(x, lo, hi));
            _mm_storeu_si128(d.as_mut_ptr().cast(), res);
        }
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lo_t[(s & 0x0f) as usize] ^ hi_t[(s >> 4) as usize];
    }
}

#[target_feature(enable = "ssse3")]
fn scale_ssse3_impl(buf: &mut [u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_128(lo_t);
    let hi = load_table_128(hi_t);
    let mut chunks = buf.chunks_exact_mut(16);
    for c in &mut chunks {
        // SAFETY: the chunk is exactly 16 bytes; unaligned load/store.
        unsafe {
            let x = _mm_loadu_si128(c.as_ptr().cast());
            _mm_storeu_si128(c.as_mut_ptr().cast(), product_128(x, lo, hi));
        }
    }
    for b in chunks.into_remainder().iter_mut() {
        *b = lo_t[(*b & 0x0f) as usize] ^ hi_t[(*b >> 4) as usize];
    }
}

/// Loads a 16-entry nibble table broadcast to both 128-bit lanes.
#[target_feature(enable = "avx2")]
fn load_table_256(table: &[u8; 16]) -> __m256i {
    // SAFETY: `table` is exactly 16 readable bytes.
    let t = unsafe { _mm_loadu_si128(table.as_ptr().cast()) };
    _mm256_broadcastsi128_si256(t)
}

/// Per-lane `vpshufb` nibble lookup; the tables are duplicated in both
/// lanes, so the lane-local shuffle semantics are exactly what we want.
#[target_feature(enable = "avx2")]
fn product_256(x: __m256i, lo: __m256i, hi: __m256i) -> __m256i {
    let nib = _mm256_set1_epi8(0x0f);
    let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(x, nib));
    let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(x), nib));
    _mm256_xor_si256(l, h)
}

#[target_feature(enable = "avx2")]
fn mul_acc_avx2_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_256(lo_t);
    let hi = load_table_256(hi_t);
    let mut dc = dst.chunks_exact_mut(32);
    let mut sc = src.chunks_exact(32);
    for (d, s) in (&mut dc).zip(&mut sc) {
        // SAFETY: both chunks are exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(s.as_ptr().cast());
            let cur = _mm256_loadu_si256(d.as_ptr().cast());
            let res = _mm256_xor_si256(cur, product_256(x, lo, hi));
            _mm256_storeu_si256(d.as_mut_ptr().cast(), res);
        }
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lo_t[(s & 0x0f) as usize] ^ hi_t[(s >> 4) as usize];
    }
}

#[target_feature(enable = "avx2")]
fn scale_avx2_impl(buf: &mut [u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_256(lo_t);
    let hi = load_table_256(hi_t);
    let mut chunks = buf.chunks_exact_mut(32);
    for c in &mut chunks {
        // SAFETY: the chunk is exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(c.as_ptr().cast());
            _mm256_storeu_si256(c.as_mut_ptr().cast(), product_256(x, lo, hi));
        }
    }
    for b in chunks.into_remainder().iter_mut() {
        *b = lo_t[(*b & 0x0f) as usize] ^ hi_t[(*b >> 4) as usize];
    }
}

// ---------------------------------------------------------------------------
// GFNI: one `vgf2p8affineqb` per 32 bytes
// ---------------------------------------------------------------------------

/// The coefficient's 8×8 bit-matrix broadcast to every qword of a 256-bit
/// register — the second operand of `vgf2p8affineqb`.
#[target_feature(enable = "gfni,avx2")]
fn mul_matrix_256(coeff: u8) -> __m256i {
    _mm256_set1_epi64x(i64::from_le_bytes(MUL_MATRIX[coeff as usize].to_le_bytes()))
}

/// `dst[i] ^= coeff · src[i]` via GFNI `vgf2p8affineqb`, 32 bytes per step.
///
/// Caller must have verified `gfni` + `avx2` support (the dispatcher has).
pub(super) fn mul_acc_gfni(dst: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2"));
    // SAFETY: the gfni+avx2 target features were runtime-verified by the
    // caller.
    unsafe { mul_acc_gfni_impl(dst, src, coeff) }
}

/// `buf[i] = coeff · buf[i]` via GFNI `vgf2p8affineqb`.
pub(super) fn scale_gfni(buf: &mut [u8], coeff: u8) {
    debug_assert!(is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2"));
    // SAFETY: the gfni+avx2 target features were runtime-verified by the
    // caller.
    unsafe { scale_gfni_impl(buf, coeff) }
}

#[target_feature(enable = "gfni,avx2")]
fn mul_acc_gfni_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let m = mul_matrix_256(coeff);
    let mut dc = dst.chunks_exact_mut(32);
    let mut sc = src.chunks_exact(32);
    for (d, s) in (&mut dc).zip(&mut sc) {
        // SAFETY: both chunks are exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(s.as_ptr().cast());
            let cur = _mm256_loadu_si256(d.as_ptr().cast());
            let res = _mm256_xor_si256(cur, _mm256_gf2p8affine_epi64_epi8::<0>(x, m));
            _mm256_storeu_si256(d.as_mut_ptr().cast(), res);
        }
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lo_t[(s & 0x0f) as usize] ^ hi_t[(s >> 4) as usize];
    }
}

#[target_feature(enable = "gfni,avx2")]
fn scale_gfni_impl(buf: &mut [u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let m = mul_matrix_256(coeff);
    let mut chunks = buf.chunks_exact_mut(32);
    for c in &mut chunks {
        // SAFETY: the chunk is exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(c.as_ptr().cast());
            _mm256_storeu_si256(
                c.as_mut_ptr().cast(),
                _mm256_gf2p8affine_epi64_epi8::<0>(x, m),
            );
        }
    }
    for b in chunks.into_remainder().iter_mut() {
        *b = lo_t[(*b & 0x0f) as usize] ^ hi_t[(*b >> 4) as usize];
    }
}

// ---------------------------------------------------------------------------
// Interleaved multi-row kernels: load each source chunk once per row group
// ---------------------------------------------------------------------------

/// Byte-at-a-time multi-row tail shared by every vector kernel.
fn multi_tail(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8], from: usize) {
    for j in from..src.len() {
        let s = src[j];
        for (d, &c) in dsts.iter_mut().zip(coeffs) {
            d[j] ^= MUL_LO[c as usize][(s & 0x0f) as usize] ^ MUL_HI[c as usize][(s >> 4) as usize];
        }
    }
}

/// Multi-row [`mul_acc_ssse3`]: one 16-byte source load per row group.
pub(super) fn mul_acc_multi_ssse3(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    debug_assert!(is_x86_feature_detected!("ssse3"));
    // SAFETY: the ssse3 target feature was runtime-verified by the caller.
    unsafe { mul_acc_multi_ssse3_impl(dsts, src, coeffs) }
}

/// Multi-row [`mul_acc_avx2`]: one 32-byte source load per row group.
pub(super) fn mul_acc_multi_avx2(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: the avx2 target feature was runtime-verified by the caller.
    unsafe { mul_acc_multi_avx2_impl(dsts, src, coeffs) }
}

/// Multi-row [`mul_acc_gfni`]: one 32-byte source load per row group.
pub(super) fn mul_acc_multi_gfni(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    debug_assert!(is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2"));
    // SAFETY: the gfni+avx2 target features were runtime-verified by the
    // caller.
    unsafe { mul_acc_multi_gfni_impl(dsts, src, coeffs) }
}

#[target_feature(enable = "ssse3")]
fn mul_acc_multi_ssse3_impl(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    let mut lo = [_mm_setzero_si128(); MAX_INTERLEAVED_ROWS];
    let mut hi = [_mm_setzero_si128(); MAX_INTERLEAVED_ROWS];
    for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(coeffs) {
        *l = load_table_128(&MUL_LO[c as usize]);
        *h = load_table_128(&MUL_HI[c as usize]);
    }
    let len = src.len();
    let vec_end = len - len % 16;
    let mut i = 0;
    while i < vec_end {
        // SAFETY: `i + 16 <= len`, and every destination row has length
        // `len` (checked by the dispatcher); unaligned load/store.
        unsafe {
            let x = _mm_loadu_si128(src.as_ptr().add(i).cast());
            for (r, d) in dsts.iter_mut().enumerate() {
                let dp = d.as_mut_ptr().add(i);
                let cur = _mm_loadu_si128(dp.cast());
                _mm_storeu_si128(dp.cast(), _mm_xor_si128(cur, product_128(x, lo[r], hi[r])));
            }
        }
        i += 16;
    }
    multi_tail(dsts, src, coeffs, vec_end);
}

#[target_feature(enable = "avx2")]
fn mul_acc_multi_avx2_impl(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    let mut lo = [_mm256_setzero_si256(); MAX_INTERLEAVED_ROWS];
    let mut hi = [_mm256_setzero_si256(); MAX_INTERLEAVED_ROWS];
    for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(coeffs) {
        *l = load_table_256(&MUL_LO[c as usize]);
        *h = load_table_256(&MUL_HI[c as usize]);
    }
    let len = src.len();
    let vec_end = len - len % 32;
    let mut i = 0;
    while i < vec_end {
        // SAFETY: `i + 32 <= len`, and every destination row has length
        // `len` (checked by the dispatcher); unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            for (r, d) in dsts.iter_mut().enumerate() {
                let dp = d.as_mut_ptr().add(i);
                let cur = _mm256_loadu_si256(dp.cast());
                _mm256_storeu_si256(
                    dp.cast(),
                    _mm256_xor_si256(cur, product_256(x, lo[r], hi[r])),
                );
            }
        }
        i += 32;
    }
    multi_tail(dsts, src, coeffs, vec_end);
}

#[target_feature(enable = "gfni,avx2")]
fn mul_acc_multi_gfni_impl(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    let mut mats = [_mm256_setzero_si256(); MAX_INTERLEAVED_ROWS];
    for (m, &c) in mats.iter_mut().zip(coeffs) {
        *m = mul_matrix_256(c);
    }
    let len = src.len();
    let vec_end = len - len % 32;
    let mut i = 0;
    while i < vec_end {
        // SAFETY: `i + 32 <= len`, and every destination row has length
        // `len` (checked by the dispatcher); unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            for (r, d) in dsts.iter_mut().enumerate() {
                let dp = d.as_mut_ptr().add(i);
                let cur = _mm256_loadu_si256(dp.cast());
                _mm256_storeu_si256(
                    dp.cast(),
                    _mm256_xor_si256(cur, _mm256_gf2p8affine_epi64_epi8::<0>(x, mats[r])),
                );
            }
        }
        i += 32;
    }
    multi_tail(dsts, src, coeffs, vec_end);
}
