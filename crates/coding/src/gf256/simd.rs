//! x86-64 `pshufb` kernels for bulk GF(256) multiplication.
//!
//! Both kernels evaluate the per-coefficient nibble split tables
//! ([`MUL_LO`] / [`MUL_HI`]) as vector shuffles: the 16-entry table is the
//! shuffle *source* and the data nibbles are the shuffle *indices*, so one
//! `pshufb` performs 16 (SSSE3) or 2×16 (AVX2) table lookups. Tails shorter
//! than a vector fall back to the same tables one byte at a time, which is
//! what the exhaustive differential tests pin down (`tests/kernels.rs`).
//!
//! This module is the only place in the crate that uses `unsafe`: raw
//! pointer loads/stores for the unaligned vector accesses, plus the calls
//! into `#[target_feature]` functions. Every entry point is a safe wrapper
//! whose caller contract — "only dispatch here after runtime feature
//! detection" — is enforced by `gf256::dispatch_*` and `kernel_available`.
#![allow(unsafe_code)]

use super::{MUL_HI, MUL_LO};
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
    _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
    _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
};

/// `dst[i] ^= coeff · src[i]` via SSSE3 `pshufb`, 16 bytes per step.
///
/// Caller must have verified `ssse3` support (the dispatcher has).
pub(super) fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(is_x86_feature_detected!("ssse3"));
    // SAFETY: the ssse3 target feature was runtime-verified by the caller.
    unsafe { mul_acc_ssse3_impl(dst, src, coeff) }
}

/// `buf[i] = coeff · buf[i]` via SSSE3 `pshufb`.
pub(super) fn scale_ssse3(buf: &mut [u8], coeff: u8) {
    debug_assert!(is_x86_feature_detected!("ssse3"));
    // SAFETY: the ssse3 target feature was runtime-verified by the caller.
    unsafe { scale_ssse3_impl(buf, coeff) }
}

/// `dst[i] ^= coeff · src[i]` via AVX2 `vpshufb`, 32 bytes per step.
pub(super) fn mul_acc_avx2(dst: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: the avx2 target feature was runtime-verified by the caller.
    unsafe { mul_acc_avx2_impl(dst, src, coeff) }
}

/// `buf[i] = coeff · buf[i]` via AVX2 `vpshufb`.
pub(super) fn scale_avx2(buf: &mut [u8], coeff: u8) {
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: the avx2 target feature was runtime-verified by the caller.
    unsafe { scale_avx2_impl(buf, coeff) }
}

/// Loads a 16-entry nibble table into a 128-bit register.
#[target_feature(enable = "ssse3")]
fn load_table_128(table: &[u8; 16]) -> __m128i {
    // SAFETY: `table` is exactly 16 readable bytes; loadu has no alignment
    // requirement.
    unsafe { _mm_loadu_si128(table.as_ptr().cast()) }
}

/// `product = pshufb(lo, x & 0xf) ^ pshufb(hi, (x >> 4) & 0xf)`.
#[target_feature(enable = "ssse3")]
fn product_128(x: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
    let nib = _mm_set1_epi8(0x0f);
    let l = _mm_shuffle_epi8(lo, _mm_and_si128(x, nib));
    let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(x), nib));
    _mm_xor_si128(l, h)
}

#[target_feature(enable = "ssse3")]
fn mul_acc_ssse3_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_128(lo_t);
    let hi = load_table_128(hi_t);
    let mut dc = dst.chunks_exact_mut(16);
    let mut sc = src.chunks_exact(16);
    for (d, s) in (&mut dc).zip(&mut sc) {
        // SAFETY: both chunks are exactly 16 bytes; unaligned load/store.
        unsafe {
            let x = _mm_loadu_si128(s.as_ptr().cast());
            let cur = _mm_loadu_si128(d.as_ptr().cast());
            let res = _mm_xor_si128(cur, product_128(x, lo, hi));
            _mm_storeu_si128(d.as_mut_ptr().cast(), res);
        }
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lo_t[(s & 0x0f) as usize] ^ hi_t[(s >> 4) as usize];
    }
}

#[target_feature(enable = "ssse3")]
fn scale_ssse3_impl(buf: &mut [u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_128(lo_t);
    let hi = load_table_128(hi_t);
    let mut chunks = buf.chunks_exact_mut(16);
    for c in &mut chunks {
        // SAFETY: the chunk is exactly 16 bytes; unaligned load/store.
        unsafe {
            let x = _mm_loadu_si128(c.as_ptr().cast());
            _mm_storeu_si128(c.as_mut_ptr().cast(), product_128(x, lo, hi));
        }
    }
    for b in chunks.into_remainder().iter_mut() {
        *b = lo_t[(*b & 0x0f) as usize] ^ hi_t[(*b >> 4) as usize];
    }
}

/// Loads a 16-entry nibble table broadcast to both 128-bit lanes.
#[target_feature(enable = "avx2")]
fn load_table_256(table: &[u8; 16]) -> __m256i {
    // SAFETY: `table` is exactly 16 readable bytes.
    let t = unsafe { _mm_loadu_si128(table.as_ptr().cast()) };
    _mm256_broadcastsi128_si256(t)
}

/// Per-lane `vpshufb` nibble lookup; the tables are duplicated in both
/// lanes, so the lane-local shuffle semantics are exactly what we want.
#[target_feature(enable = "avx2")]
fn product_256(x: __m256i, lo: __m256i, hi: __m256i) -> __m256i {
    let nib = _mm256_set1_epi8(0x0f);
    let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(x, nib));
    let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(x), nib));
    _mm256_xor_si256(l, h)
}

#[target_feature(enable = "avx2")]
fn mul_acc_avx2_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_256(lo_t);
    let hi = load_table_256(hi_t);
    let mut dc = dst.chunks_exact_mut(32);
    let mut sc = src.chunks_exact(32);
    for (d, s) in (&mut dc).zip(&mut sc) {
        // SAFETY: both chunks are exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(s.as_ptr().cast());
            let cur = _mm256_loadu_si256(d.as_ptr().cast());
            let res = _mm256_xor_si256(cur, product_256(x, lo, hi));
            _mm256_storeu_si256(d.as_mut_ptr().cast(), res);
        }
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lo_t[(s & 0x0f) as usize] ^ hi_t[(s >> 4) as usize];
    }
}

#[target_feature(enable = "avx2")]
fn scale_avx2_impl(buf: &mut [u8], coeff: u8) {
    let lo_t = &MUL_LO[coeff as usize];
    let hi_t = &MUL_HI[coeff as usize];
    let lo = load_table_256(lo_t);
    let hi = load_table_256(hi_t);
    let mut chunks = buf.chunks_exact_mut(32);
    for c in &mut chunks {
        // SAFETY: the chunk is exactly 32 bytes; unaligned load/store.
        unsafe {
            let x = _mm256_loadu_si256(c.as_ptr().cast());
            _mm256_storeu_si256(c.as_mut_ptr().cast(), product_256(x, lo, hi));
        }
    }
    for b in chunks.into_remainder().iter_mut() {
        *b = lo_t[(*b & 0x0f) as usize] ^ hi_t[(*b >> 4) as usize];
    }
}
