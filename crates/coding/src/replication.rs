//! Full replication, the paper's baseline and the degenerate `k = 1` code.

use crate::scheme::validate_params;
use crate::{Block, BlockIndex, Code, CodeKind, CodingError, Value};

/// The replication "code": every block is a full copy of the value.
///
/// This realizes the paper's observation that replication is the `k = 1`
/// case of `k`-of-`n` coding: `D({e}) = v` for any single block. Storage per
/// block is the full `D` bits, which is why replication-based algorithms
/// (such as ABD) cost `O(fD)` but never pay a concurrency penalty.
///
/// ```
/// use rsb_coding::{Code, Replication, Value};
/// # fn main() -> Result<(), rsb_coding::CodingError> {
/// let code = Replication::new(3, 8)?;
/// let v = Value::seeded(1, 8);
/// let blocks = code.encode(&v);
/// // One block suffices:
/// assert_eq!(code.decode(&blocks[2..3])?, v);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Replication {
    n: usize,
    value_len: usize,
}

impl std::fmt::Debug for Replication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Replication({} copies, {} B values)",
            self.n, self.value_len
        )
    }
}

impl Replication {
    /// Creates a replication scheme producing `n` copies of `value_len`-byte
    /// values.
    ///
    /// # Errors
    ///
    /// Fails if `n = 0`, `n > 256`, or `value_len = 0`.
    pub fn new(n: usize, value_len: usize) -> Result<Self, CodingError> {
        validate_params(1, n, value_len)?;
        Ok(Replication { n, value_len })
    }
}

impl Code for Replication {
    fn kind(&self) -> CodeKind {
        CodeKind::Replication
    }

    fn reconstruction_threshold(&self) -> usize {
        1
    }

    fn block_count(&self) -> usize {
        self.n
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn block_size_bits(&self, _index: BlockIndex) -> u64 {
        8 * self.value_len as u64
    }

    fn encode_block(&self, value: &Value, index: BlockIndex) -> Result<Block, CodingError> {
        if value.len() != self.value_len {
            return Err(CodingError::WrongValueLength {
                expected: self.value_len,
                actual: value.len(),
            });
        }
        if index as usize >= self.n {
            return Err(CodingError::UnknownBlockIndex(index));
        }
        Ok(Block::new(index, value.as_bytes().to_vec()))
    }

    fn decode(&self, blocks: &[Block]) -> Result<Value, CodingError> {
        let Some(b) = blocks.first() else {
            return Err(CodingError::NotEnoughBlocks { needed: 1, got: 0 });
        };
        if b.index() as usize >= self.n {
            return Err(CodingError::UnknownBlockIndex(b.index()));
        }
        if b.len() != self.value_len {
            return Err(CodingError::WrongBlockSize {
                index: b.index(),
                expected: self.value_len,
                actual: b.len(),
            });
        }
        Ok(Value::from_bytes(b.data().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_is_a_replica() {
        let code = Replication::new(4, 12).unwrap();
        let v = Value::seeded(6, 12);
        for b in code.encode(&v) {
            assert_eq!(b.data(), v.as_bytes());
            assert_eq!(b.size_bits(), v.size_bits());
        }
    }

    #[test]
    fn single_block_decodes() {
        let code = Replication::new(5, 4).unwrap();
        let v = Value::seeded(10, 4);
        let blocks = code.encode(&v);
        for b in &blocks {
            assert_eq!(code.decode(std::slice::from_ref(b)).unwrap(), v);
        }
    }

    #[test]
    fn empty_set_is_bottom() {
        let code = Replication::new(3, 4).unwrap();
        assert_eq!(
            code.decode(&[]).unwrap_err(),
            CodingError::NotEnoughBlocks { needed: 1, got: 0 }
        );
    }

    #[test]
    fn storage_is_n_times_d() {
        let code = Replication::new(3, 128).unwrap();
        assert_eq!(code.full_set_bits(), 3 * 1024);
    }

    #[test]
    fn invalid_inputs() {
        assert!(Replication::new(0, 4).is_err());
        assert!(Replication::new(3, 0).is_err());
        let code = Replication::new(2, 4).unwrap();
        assert!(code.encode_block(&Value::zeroed(4), 2).is_err());
        assert!(code.encode_block(&Value::zeroed(5), 0).is_err());
        assert!(code.decode(&[Block::new(0, vec![1, 2, 3])]).is_err());
    }
}
