//! Systematic `k`-of-`n` Reed–Solomon codes over GF(2⁸).
//!
//! This is the code family the paper's Section 5 algorithm assumes: `encode`
//! produces `n` blocks of `D/k` bits each, and `decode` reconstructs the
//! value from any `k` distinct blocks (the MDS property).

use crate::matrix::Matrix;
use crate::scheme::{shard_slice, validate_params};
use crate::{gf256, Block, BlockIndex, Code, CodeKind, CodingError, Value};

/// A systematic `k`-of-`n` Reed–Solomon code for values of a fixed length.
///
/// The encoding matrix is the `n × k` Vandermonde matrix normalized so its
/// top `k × k` block is the identity; blocks `0..k` are therefore the raw
/// data shards (systematic form) and blocks `k..n` are parity. Any `k` rows
/// of the matrix are invertible, so any `k` distinct blocks decode.
///
/// ```
/// use rsb_coding::{Code, ReedSolomon, Value};
/// # fn main() -> Result<(), rsb_coding::CodingError> {
/// let code = ReedSolomon::new(3, 7, 300)?;
/// let v = Value::seeded(9, 300);
/// let blocks = code.encode(&v);
/// assert_eq!(blocks.len(), 7);
/// // Parity-only decoding works too:
/// assert_eq!(code.decode(&blocks[4..7])?, v);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    value_len: usize,
    shard_len: usize,
    /// `n × k` systematic encoding matrix.
    encoding: Matrix,
}

impl std::fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReedSolomon({}-of-{}, {} B values, {} B shards)",
            self.k, self.n, self.value_len, self.shard_len
        )
    }
}

impl ReedSolomon {
    /// Creates a `k`-of-`n` code for values of exactly `value_len` bytes.
    ///
    /// # Errors
    ///
    /// Fails if `k = 0`, `k > n`, `n > 256`, or `value_len = 0`.
    pub fn new(k: usize, n: usize, value_len: usize) -> Result<Self, CodingError> {
        validate_params(k, n, value_len)?;
        let vandermonde = Matrix::vandermonde(n, k);
        let top = vandermonde.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("square Vandermonde with distinct points is invertible");
        let encoding = &vandermonde * &top_inv;
        // The normalization guarantees the systematic form the fast paths
        // rely on: rows 0..k of the encoding matrix are the identity.
        debug_assert!((0..k).all(|i| { (0..k).all(|j| encoding.get(i, j) == u8::from(i == j)) }));
        Ok(ReedSolomon {
            k,
            n,
            value_len,
            shard_len: value_len.div_ceil(k),
            encoding,
        })
    }

    /// The `n × k` systematic encoding matrix (row `i` produces block `i`).
    pub fn encoding_matrix(&self) -> &Matrix {
        &self.encoding
    }

    /// Shard (= block payload) length in **bytes**: `⌈value_len / k⌉`,
    /// i.e. `⌈(D/8) / k⌉` for the paper's `D = 8·value_len` bits.
    ///
    /// The paper states block sizes in the bit domain as `D/k` bits; this
    /// implementation works on whole bytes, so each block carries
    /// `8·⌈D/(8k)⌉` bits — `D/k` rounded up to the next byte boundary (the
    /// tail shard is zero-padded when `k` does not divide `value_len`).
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    fn check_value(&self, value: &Value) -> Result<(), CodingError> {
        if value.len() != self.value_len {
            return Err(CodingError::WrongValueLength {
                expected: self.value_len,
                actual: value.len(),
            });
        }
        Ok(())
    }

    /// Writes block `i` of `bytes` into `out` (exactly `shard_len` bytes,
    /// already zeroed). Systematic rows are a straight copy; parity rows are
    /// one row of the matrix–buffer product, reading the shard views of
    /// `bytes` in place (no sharding copies).
    fn encode_row_into(&self, bytes: &[u8], i: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.shard_len);
        if i < self.k {
            let src = shard_slice(bytes, self.shard_len, i);
            out[..src.len()].copy_from_slice(src);
        } else {
            for (j, &coeff) in self.encoding.row(i).iter().enumerate() {
                let src = shard_slice(bytes, self.shard_len, j);
                gf256::mul_acc(&mut out[..src.len()], src, coeff);
            }
        }
    }

    /// Encodes all `n` blocks into one contiguous caller-provided buffer —
    /// block `i` occupies `out[i*shard_len .. (i+1)*shard_len]` — as a
    /// column-major matrix–buffer product: each source shard is read once
    /// per group of up to [`gf256::MAX_INTERLEAVED_ROWS`] parity rows (the
    /// multi-row kernels), instead of once per parity row. Only two small
    /// bookkeeping `Vec`s (row pointers and one coefficient column) are
    /// allocated; no data is copied or staged.
    ///
    /// # Errors
    ///
    /// Fails if `value` has the wrong length for this code.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != block_count() * shard_len()` (buffer sizing
    /// is a programmer error, not a data error).
    pub fn encode_into(&self, value: &Value, out: &mut [u8]) -> Result<(), CodingError> {
        self.check_value(value)?;
        assert_eq!(
            out.len(),
            self.n * self.shard_len,
            "encode_into buffer must be n * shard_len bytes"
        );
        let bytes = value.as_bytes();
        out.fill(0);
        // Systematic prefix: blocks 0..k are the (padded) value itself.
        out[..bytes.len()].copy_from_slice(bytes);
        // Parity rows read shard views of `bytes` (the value, not `out`),
        // so they can all accumulate concurrently: for each source shard,
        // one interleaved pass feeds every parity row in groups of up to
        // MAX_INTERLEAVED_ROWS.
        let parity = &mut out[self.k * self.shard_len..];
        let mut rows: Vec<&mut [u8]> = parity.chunks_exact_mut(self.shard_len).collect();
        if rows.is_empty() {
            return Ok(());
        }
        let mut coeffs = vec![0u8; rows.len()];
        for j in 0..self.k {
            let src = shard_slice(bytes, self.shard_len, j);
            for (pi, c) in coeffs.iter_mut().enumerate() {
                *c = self.encoding.get(self.k + pi, j);
            }
            if src.len() == self.shard_len {
                gf256::mul_acc_multi(&mut rows, src, &coeffs);
            } else {
                // Tail shard: the source view is short, so accumulate into
                // equally-short row prefixes (the suffix stays zero, which
                // matches the zero-padded tail semantics).
                let mut views: Vec<&mut [u8]> =
                    rows.iter_mut().map(|r| &mut r[..src.len()]).collect();
                gf256::mul_acc_multi(&mut views, src, &coeffs);
            }
        }
        Ok(())
    }
}

impl Code for ReedSolomon {
    fn kind(&self) -> CodeKind {
        CodeKind::ReedSolomon
    }

    fn reconstruction_threshold(&self) -> usize {
        self.k
    }

    fn block_count(&self) -> usize {
        self.n
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn block_size_bits(&self, _index: BlockIndex) -> u64 {
        8 * self.shard_len as u64
    }

    fn encode_block(&self, value: &Value, index: BlockIndex) -> Result<Block, CodingError> {
        self.check_value(value)?;
        if index as usize >= self.n {
            return Err(CodingError::UnknownBlockIndex(index));
        }
        // No re-sharding: the row product reads shard views of the value in
        // place, so a caller looping over every index pays O(D) per parity
        // block and O(D/k) per systematic block — not O(k·D) copies.
        let mut out = vec![0u8; self.shard_len];
        self.encode_row_into(value.as_bytes(), index as usize, &mut out);
        Ok(Block::new(index, out))
    }

    fn encode(&self, value: &Value) -> Vec<Block> {
        self.check_value(value)
            .expect("value length must match the code");
        let bytes = value.as_bytes();
        // Each block is produced directly into its own final payload buffer
        // from shard views of the value: zero intermediate allocations.
        (0..self.n)
            .map(|i| {
                let mut out = vec![0u8; self.shard_len];
                self.encode_row_into(bytes, i, &mut out);
                Block::new(i as BlockIndex, out)
            })
            .collect()
    }

    fn decode(&self, blocks: &[Block]) -> Result<Value, CodingError> {
        // Deduplicate by index, validating as we go.
        let mut chosen: Vec<&Block> = Vec::with_capacity(self.k);
        let mut seen = vec![false; self.n];
        for b in blocks {
            let i = b.index() as usize;
            if i >= self.n {
                return Err(CodingError::UnknownBlockIndex(b.index()));
            }
            if b.len() != self.shard_len {
                return Err(CodingError::WrongBlockSize {
                    index: b.index(),
                    expected: self.shard_len,
                    actual: b.len(),
                });
            }
            if !seen[i] {
                seen[i] = true;
                chosen.push(b);
                if chosen.len() == self.k {
                    break;
                }
            }
        }
        if chosen.len() < self.k {
            return Err(CodingError::NotEnoughBlocks {
                needed: self.k,
                got: chosen.len(),
            });
        }
        // One contiguous k·shard_len buffer holds all decoded shards;
        // truncating to value_len yields the value without reassembly.
        let mut data = vec![0u8; self.k * self.shard_len];
        if chosen.iter().all(|b| (b.index() as usize) < self.k) {
            // All-systematic fast path: k distinct indices < k are exactly
            // {0..k}, so the shards are the raw payloads — no inversion.
            for b in &chosen {
                let start = b.index() as usize * self.shard_len;
                data[start..start + self.shard_len].copy_from_slice(b.data());
            }
        } else {
            let indices: Vec<usize> = chosen.iter().map(|b| b.index() as usize).collect();
            let sub = self.encoding.select_rows(&indices);
            let sub_inv = sub
                .inverse()
                .expect("any k rows of an MDS encoding matrix are invertible");
            // shard[s] = Σ_j inv[s][j] * block[j]
            for (s, out) in data.chunks_exact_mut(self.shard_len).enumerate() {
                for (j, b) in chosen.iter().enumerate() {
                    gf256::mul_acc(out, b.data(), sub_inv.get(s, j));
                }
            }
        }
        data.truncate(self.value_len);
        Ok(Value::from_bytes(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::shard;

    #[test]
    fn encode_into_matches_encode() {
        for (k, n, len) in [
            (3usize, 7usize, 301usize),
            (2, 4, 16),
            (5, 5, 40),
            (4, 9, 64),
        ] {
            let code = ReedSolomon::new(k, n, len).unwrap();
            let v = Value::seeded(17, len);
            let blocks = code.encode(&v);
            let mut buf = vec![0xaau8; n * code.shard_len()];
            code.encode_into(&v, &mut buf).unwrap();
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(
                    &buf[i * code.shard_len()..(i + 1) * code.shard_len()],
                    b.data(),
                    "k={k} n={n} len={len} block {i}"
                );
            }
        }
    }

    #[test]
    fn encode_into_rejects_wrong_value_length() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        let mut buf = vec![0u8; 4 * code.shard_len()];
        assert_eq!(
            code.encode_into(&Value::zeroed(15), &mut buf).unwrap_err(),
            CodingError::WrongValueLength {
                expected: 16,
                actual: 15
            }
        );
    }

    #[test]
    #[should_panic(expected = "n * shard_len")]
    fn encode_into_wrong_buffer_size_panics() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        let mut buf = vec![0u8; 7];
        let _ = code.encode_into(&Value::zeroed(16), &mut buf);
    }

    #[test]
    fn systematic_blocks_decode_in_any_order() {
        // Exercises the no-inversion fast path, shuffled.
        let code = ReedSolomon::new(4, 9, 57).unwrap();
        let v = Value::seeded(31, 57);
        let blocks = code.encode(&v);
        let shuffled = vec![
            blocks[2].clone(),
            blocks[0].clone(),
            blocks[3].clone(),
            blocks[1].clone(),
        ];
        assert_eq!(code.decode(&shuffled).unwrap(), v);
    }

    #[test]
    fn systematic_prefix_is_raw_data() {
        let code = ReedSolomon::new(4, 9, 64).unwrap();
        let v = Value::seeded(7, 64);
        let blocks = code.encode(&v);
        let shards = shard(&v, 4);
        for i in 0..4 {
            assert_eq!(blocks[i].data(), &shards[i][..], "block {i} not systematic");
        }
    }

    #[test]
    fn any_k_blocks_decode() {
        let code = ReedSolomon::new(3, 6, 50).unwrap();
        let v = Value::seeded(123, 50);
        let blocks = code.encode(&v);
        // All 20 3-subsets of 6 blocks.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let subset = vec![blocks[a].clone(), blocks[b].clone(), blocks[c].clone()];
                    assert_eq!(code.decode(&subset).unwrap(), v, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn fewer_than_k_blocks_is_bottom() {
        let code = ReedSolomon::new(3, 6, 50).unwrap();
        let v = Value::seeded(5, 50);
        let blocks = code.encode(&v);
        let err = code.decode(&blocks[..2]).unwrap_err();
        assert_eq!(err, CodingError::NotEnoughBlocks { needed: 3, got: 2 });
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let code = ReedSolomon::new(2, 4, 10).unwrap();
        let v = Value::seeded(5, 10);
        let blocks = code.encode(&v);
        let dup = vec![blocks[1].clone(), blocks[1].clone(), blocks[1].clone()];
        assert_eq!(
            code.decode(&dup).unwrap_err(),
            CodingError::NotEnoughBlocks { needed: 2, got: 1 }
        );
    }

    #[test]
    fn extra_blocks_are_ignored() {
        let code = ReedSolomon::new(2, 5, 16).unwrap();
        let v = Value::seeded(1, 16);
        let blocks = code.encode(&v);
        assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    #[test]
    fn block_sizes_symmetric_and_d_over_k() {
        let code = ReedSolomon::new(4, 10, 100).unwrap();
        // ⌈100/4⌉ = 25 bytes = 200 bits for every index.
        for i in 0..10 {
            assert_eq!(code.block_size_bits(i), 200);
        }
        // Symmetry across values: sizes never depend on content.
        for seed in 0..5 {
            let v = Value::seeded(seed, 100);
            for b in code.encode(&v) {
                assert_eq!(b.size_bits(), 200);
            }
        }
    }

    #[test]
    fn unaligned_value_length_pads() {
        let code = ReedSolomon::new(3, 5, 10).unwrap(); // 10 = 3·3+1
        let v = Value::seeded(77, 10);
        let blocks = code.encode(&v);
        assert!(blocks.iter().all(|b| b.len() == 4));
        assert_eq!(code.decode(&blocks[2..5]).unwrap(), v);
    }

    #[test]
    fn k_equals_n_works() {
        let code = ReedSolomon::new(4, 4, 32).unwrap();
        let v = Value::seeded(2, 32);
        let blocks = code.encode(&v);
        assert_eq!(code.decode(&blocks).unwrap(), v);
        assert_eq!(
            code.decode(&blocks[..3]).unwrap_err(),
            CodingError::NotEnoughBlocks { needed: 4, got: 3 }
        );
    }

    #[test]
    fn wrong_value_length_rejected() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        let err = code.encode_block(&Value::zeroed(15), 0).unwrap_err();
        assert_eq!(
            err,
            CodingError::WrongValueLength {
                expected: 16,
                actual: 15
            }
        );
    }

    #[test]
    fn wrong_block_size_rejected() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        let bogus = vec![Block::new(0, vec![0u8; 3]), Block::new(1, vec![0u8; 8])];
        assert!(matches!(
            code.decode(&bogus).unwrap_err(),
            CodingError::WrongBlockSize { index: 0, .. }
        ));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        let v = Value::zeroed(16);
        assert_eq!(
            code.encode_block(&v, 4).unwrap_err(),
            CodingError::UnknownBlockIndex(4)
        );
        let blocks = vec![Block::new(200, vec![0u8; 8])];
        assert_eq!(
            code.decode(&blocks).unwrap_err(),
            CodingError::UnknownBlockIndex(200)
        );
    }

    #[test]
    fn full_set_bits_is_n_over_k_expansion() {
        let code = ReedSolomon::new(4, 12, 100).unwrap();
        // n·⌈D/k⌉ in bits: 12 · 25 B = 300 B = 2400 bits.
        assert_eq!(code.full_set_bits(), 2400);
    }

    #[test]
    fn max_field_size_code() {
        let code = ReedSolomon::new(8, 256, 64).unwrap();
        let v = Value::seeded(3, 64);
        let blocks = code.encode(&v);
        let tail: Vec<Block> = blocks[248..].to_vec();
        assert_eq!(code.decode(&tail).unwrap(), v);
    }
}
