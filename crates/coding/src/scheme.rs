//! The [`Code`] trait — the paper's encoding scheme `(E, D)` — and errors.

use crate::{Block, BlockIndex, Value};

/// Errors returned by coding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The code parameters are invalid (e.g. `k = 0`, `k > n`, `n > 256`).
    InvalidParameters(String),
    /// A value of the wrong length was passed to `encode`.
    WrongValueLength {
        /// Length the code was constructed for.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// Decoding failed: fewer than `k` distinct usable blocks (the paper's
    /// `D(S) = ⊥`).
    NotEnoughBlocks {
        /// Blocks required to reconstruct.
        needed: usize,
        /// Distinct usable blocks supplied.
        got: usize,
    },
    /// A supplied block has an index this code never produces.
    UnknownBlockIndex(BlockIndex),
    /// A supplied block has the wrong size for its index.
    WrongBlockSize {
        /// The offending block index.
        index: BlockIndex,
        /// Expected payload size in bytes.
        expected: usize,
        /// Actual payload size in bytes.
        actual: usize,
    },
}

impl std::fmt::Display for CodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodingError::InvalidParameters(msg) => write!(f, "invalid code parameters: {msg}"),
            CodingError::WrongValueLength { expected, actual } => {
                write!(
                    f,
                    "value length {actual} does not match code length {expected}"
                )
            }
            CodingError::NotEnoughBlocks { needed, got } => {
                write!(f, "cannot decode: need {needed} distinct blocks, got {got}")
            }
            CodingError::UnknownBlockIndex(i) => write!(f, "unknown block index {i}"),
            CodingError::WrongBlockSize {
                index,
                expected,
                actual,
            } => write!(f, "block {index} has {actual} bytes, expected {expected}"),
        }
    }
}

impl std::error::Error for CodingError {}

/// Which family a code instance belongs to; useful for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// Full replication (`k = 1`).
    Replication,
    /// Fixed-rate systematic MDS (`k`-of-`n` Reed–Solomon).
    ReedSolomon,
    /// Rateless random-linear fountain over unbounded indices.
    Rateless,
}

impl std::fmt::Display for CodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeKind::Replication => write!(f, "replication"),
            CodeKind::ReedSolomon => write!(f, "reed-solomon"),
            CodeKind::Rateless => write!(f, "rateless"),
        }
    }
}

/// An encoding scheme: the pair of functions `E : V × N → E` and
/// `D : 2^E → V ∪ {⊥}` of the paper's Section 3.1.
///
/// # Contract
///
/// * **Symmetry (Definition 3).** `block_size_bits(i)` must depend only on
///   `i`; every value encodes to blocks of identical sizes. Property tests
///   in this crate verify this for all provided codes.
/// * **Value independence (black-box).** Each value is coded independently
///   of other values; no method receives more than one value.
/// * **`k`-reconstruction.** `decode` returns the value from any
///   `reconstruction_threshold()` distinct blocks of that value.
///
/// Implementors are cheap to clone (parameters + precomputed matrices).
pub trait Code: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// The family of this code instance.
    fn kind(&self) -> CodeKind;

    /// `k`: the number of distinct blocks sufficient (and necessary) for
    /// reconstruction.
    fn reconstruction_threshold(&self) -> usize;

    /// `n`: the number of *primary* block indices, i.e. `E(v, i)` is defined
    /// for `0 ≤ i < block_count()`. Rateless codes return `u32::MAX` here.
    fn block_count(&self) -> usize;

    /// The fixed value length in bytes this instance was constructed for.
    fn value_len(&self) -> usize;

    /// The paper's `D`: value size in bits.
    fn data_bits(&self) -> u64 {
        8 * self.value_len() as u64
    }

    /// The paper's `size(i) = |E(v, i)|` (symmetric: no value parameter).
    fn block_size_bits(&self, index: BlockIndex) -> u64;

    /// The encoding function `E(v, i)`.
    ///
    /// # Errors
    ///
    /// Fails if `v` has the wrong length or `index` is out of range.
    fn encode_block(&self, value: &Value, index: BlockIndex) -> Result<Block, CodingError>;

    /// Encodes the full primary block set `{E(v, i) | 0 ≤ i < n}`.
    ///
    /// # Panics
    ///
    /// Panics if `value` has the wrong length (programmer error at call
    /// sites that constructed the value for this code); use
    /// [`Code::encode_block`] for a fallible variant.
    fn encode(&self, value: &Value) -> Vec<Block> {
        (0..self.block_count() as BlockIndex)
            .map(|i| {
                self.encode_block(value, i)
                    .expect("value length was validated by caller")
            })
            .collect()
    }

    /// The decoding function `D(S)`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::NotEnoughBlocks`] (the paper's `⊥`) when the
    /// supplied set has fewer than `k` distinct usable blocks, and block
    /// validation errors for malformed inputs.
    fn decode(&self, blocks: &[Block]) -> Result<Value, CodingError>;

    /// Total bits across one full primary block set — the per-value storage
    /// footprint if every produced block is retained.
    fn full_set_bits(&self) -> u64 {
        (0..self.block_count() as BlockIndex)
            .map(|i| self.block_size_bits(i))
            .sum()
    }
}

/// Validates `(k, n, value_len)` parameters shared by the fixed-rate codes.
pub(crate) fn validate_params(k: usize, n: usize, value_len: usize) -> Result<(), CodingError> {
    if k == 0 {
        return Err(CodingError::InvalidParameters("k must be ≥ 1".into()));
    }
    if n < k {
        return Err(CodingError::InvalidParameters(format!(
            "n ({n}) must be ≥ k ({k})"
        )));
    }
    if n > 256 {
        return Err(CodingError::InvalidParameters(format!(
            "n ({n}) must be ≤ 256 over GF(256)"
        )));
    }
    if value_len == 0 {
        return Err(CodingError::InvalidParameters(
            "value length must be ≥ 1 byte".into(),
        ));
    }
    Ok(())
}

/// Returns the `j`-th shard of `bytes` as a borrowed sub-slice, for
/// `shard_len`-byte shards — the shared zero-copy shard view used by the
/// Reed–Solomon and rateless hot paths.
///
/// The slice may be shorter than `shard_len` (or empty) for the tail
/// shard(s); the implicit zero padding contributes nothing to a GF(256)
/// linear combination, so encode paths operate directly on these views and
/// only ever pad the *output* buffer.
pub(crate) fn shard_slice(bytes: &[u8], shard_len: usize, j: usize) -> &[u8] {
    let start = (j * shard_len).min(bytes.len());
    let end = ((j + 1) * shard_len).min(bytes.len());
    &bytes[start..end]
}

/// Splits a value into `k` owned shards of `ceil(len/k)` bytes, zero-padding
/// the tail shard. Reference implementation retained for tests; production
/// paths use [`shard_slice`] views instead of materializing `Vec<Vec<u8>>`.
#[cfg(test)]
pub(crate) fn shard(value: &Value, k: usize) -> Vec<Vec<u8>> {
    let shard_len = value.len().div_ceil(k);
    let bytes = value.as_bytes();
    (0..k)
        .map(|s| {
            let start = (s * shard_len).min(bytes.len());
            let end = ((s + 1) * shard_len).min(bytes.len());
            let mut v = bytes[start..end].to_vec();
            v.resize(shard_len, 0);
            v
        })
        .collect()
}

/// Reassembles a value of `value_len` bytes from `k` shards. Reference
/// implementation retained for tests; production decode paths write shards
/// directly into one contiguous buffer.
#[cfg(test)]
pub(crate) fn unshard(shards: Vec<Vec<u8>>, value_len: usize) -> Value {
    let mut out = Vec::with_capacity(value_len);
    for s in shards {
        out.extend_from_slice(&s);
    }
    out.truncate(value_len);
    Value::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_validation() {
        assert!(validate_params(0, 3, 10).is_err());
        assert!(validate_params(4, 3, 10).is_err());
        assert!(validate_params(2, 300, 10).is_err());
        assert!(validate_params(2, 3, 0).is_err());
        assert!(validate_params(2, 3, 10).is_ok());
        assert!(validate_params(1, 1, 1).is_ok());
        assert!(validate_params(128, 256, 1024).is_ok());
    }

    #[test]
    fn shard_unshard_roundtrip() {
        for len in [1usize, 7, 8, 9, 100] {
            for k in [1usize, 2, 3, 5] {
                let v = Value::seeded(42, len);
                let shards = shard(&v, k);
                assert_eq!(shards.len(), k);
                let shard_len = len.div_ceil(k);
                assert!(shards.iter().all(|s| s.len() == shard_len));
                assert_eq!(unshard(shards, len), v, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn shard_slice_matches_owned_shards() {
        for len in [1usize, 7, 8, 9, 100] {
            for k in [1usize, 2, 3, 5] {
                let v = Value::seeded(9, len);
                let shard_len = len.div_ceil(k);
                let owned = shard(&v, k);
                for (j, full) in owned.iter().enumerate() {
                    let s = shard_slice(v.as_bytes(), shard_len, j);
                    assert_eq!(&full[..s.len()], s, "len={len} k={k} j={j}");
                    assert!(
                        full[s.len()..].iter().all(|&b| b == 0),
                        "padding must be zero"
                    );
                }
            }
        }
    }

    #[test]
    fn error_display() {
        let e = CodingError::NotEnoughBlocks { needed: 3, got: 1 };
        assert_eq!(
            e.to_string(),
            "cannot decode: need 3 distinct blocks, got 1"
        );
        let e = CodingError::WrongBlockSize {
            index: 2,
            expected: 8,
            actual: 9,
        };
        assert!(e.to_string().contains("block 2"));
    }

    #[test]
    fn code_kind_display() {
        assert_eq!(CodeKind::Replication.to_string(), "replication");
        assert_eq!(CodeKind::ReedSolomon.to_string(), "reed-solomon");
        assert_eq!(CodeKind::Rateless.to_string(), "rateless");
    }
}
