//! Arithmetic in the finite field GF(2⁸).
//!
//! All codes in this crate operate over GF(2⁸) with the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d), the conventional choice for
//! Reed–Solomon coding (e.g., in RAID-6 and QR codes). Addition is XOR;
//! multiplication uses compile-time log/antilog tables.

/// The primitive polynomial 0x11d, i.e. `x⁸ + x⁴ + x³ + x² + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Compile-time generation of the exp/log tables for the field.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the table so `exp[log a + log b]` needs no modular reduction.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();

/// Antilog table: `EXP[i] = g^i` for the generator `g = 2`, doubled in
/// length so that products of logs never need reduction mod 255.
pub const EXP: [u8; 512] = TABLES.0;

/// Log table: `LOG[x] = log_g x` for `x != 0`. `LOG[0]` is 0 and must not
/// be used; callers guard against zero operands.
pub const LOG: [u8; 256] = TABLES.1;

/// Adds two field elements (XOR). Subtraction is identical.
///
/// ```
/// assert_eq!(rsb_coding::gf256::add(0x53, 0xca), 0x99);
/// ```
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts `b` from `a`; in characteristic 2 this equals [`add`].
#[inline]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// ```
/// use rsb_coding::gf256::mul;
/// assert_eq!(mul(0, 17), 0);
/// assert_eq!(mul(1, 17), 17);
/// assert_eq!(mul(3, 7), 9); // (x+1)(x²+x+1) = x³+2x²+2x+1 ≡ x³+1
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Raises `a` to the power `e`.
///
/// ```
/// use rsb_coding::gf256::pow;
/// assert_eq!(pow(2, 8), 0x1d); // x⁸ ≡ x⁴+x³+x²+1 (mod 0x11d)
/// assert_eq!(pow(0, 0), 1);
/// ```
#[inline]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u64 * e as u64 % 255;
    EXP[l as usize]
}

/// Computes the dot product `Σ aᵢ·bᵢ` of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= mul(x, y);
    }
    acc
}

/// Computes `dst[i] ^= coeff * src[i]` for every byte — the inner loop of
/// all encode/decode paths.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc on unequal lengths");
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d ^= s;
        }
        return;
    }
    let lc = LOG[coeff as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if s != 0 {
            *d ^= EXP[lc + LOG[s as usize] as usize];
        }
    }
}

/// Scales every byte of `buf` by `coeff` in place.
pub fn scale(buf: &mut [u8], coeff: u8) {
    if coeff == 1 {
        return;
    }
    if coeff == 0 {
        buf.fill(0);
        return;
    }
    let lc = LOG[coeff as usize] as usize;
    for b in buf.iter_mut() {
        if *b != 0 {
            *b = EXP[lc + LOG[*b as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: all 255 powers distinct.
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert!(!seen[v], "generator order < 255 at {i}");
            seen[v] = true;
        }
        assert!(!seen[0], "zero must never appear as a power");
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_associative_sampled() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_sampled() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(17) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_exhaustive() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        for a in (0..=255u8).step_by(3) {
            for b in 1..=255u8 {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(5, 0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inv_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 5, 87, 255] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_large_exponent_wraps() {
        // a^255 = 1 for a != 0 (Fermat in GF(256)).
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
            assert_eq!(pow(a, 256), a);
        }
    }

    #[test]
    fn dot_product_basics() {
        assert_eq!(dot(&[1, 2, 3], &[1, 1, 1]), 1 ^ 2 ^ 3);
        assert_eq!(dot(&[], &[]), 0);
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src = [1u8, 0, 255, 87, 13];
        for coeff in [0u8, 1, 2, 200] {
            let mut dst = [9u8, 9, 9, 9, 9];
            mul_acc(&mut dst, &src, coeff);
            for i in 0..src.len() {
                assert_eq!(dst[i], 9 ^ mul(coeff, src[i]));
            }
        }
    }

    #[test]
    fn scale_matches_mul() {
        let mut buf = [3u8, 0, 200, 255];
        scale(&mut buf, 7);
        assert_eq!(buf, [mul(3, 7), 0, mul(200, 7), mul(255, 7)]);
        scale(&mut buf, 0);
        assert_eq!(buf, [0, 0, 0, 0]);
    }
}
