//! Arithmetic in the finite field GF(2⁸).
//!
//! All codes in this crate operate over GF(2⁸) with the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d), the conventional choice for
//! Reed–Solomon coding (e.g., in RAID-6 and QR codes). Addition is XOR;
//! scalar multiplication uses compile-time log/antilog tables.
//!
//! # Bulk kernels
//!
//! The encode/decode hot loop is [`mul_acc`] (`dst[i] ^= coeff · src[i]`)
//! and its in-place sibling [`scale`]. Both dispatch — once per call, never
//! per byte — to the fastest [`Kernel`] the host supports:
//!
//! * **`Gfni`** (x86-64, runtime-detected): each coefficient's multiply map
//!   is a GF(2)-linear transform, precomputed as an 8×8 bit-matrix
//!   ([`MUL_MATRIX`]) and evaluated 32 bytes at a time with
//!   `vgf2p8affineqb`. (The plain `vgf2p8mulb` multiply hardwires the AES
//!   polynomial 0x11B; the affine form is what makes GFNI usable with this
//!   crate's 0x11D field.)
//! * **`Avx2`** / **`Ssse3`** (x86-64, runtime-detected): the coefficient's
//!   low/high-nibble product tables ([`MUL_LO`] / [`MUL_HI`], 2×16 entries)
//!   are loaded into vector registers and evaluated 32 / 16 bytes at a time
//!   with `pshufb`.
//! * **`Swar`** (all platforms): 8 bytes at a time in a `u64`, multiplying
//!   every lane by the coefficient with branchless shift-and-xor doubling;
//!   tails fall back to the same nibble tables, one byte at a time.
//! * **`Scalar`**: the original branchy `EXP[LOG[c] + LOG[s]]` loop, kept as
//!   the differential-testing reference and benchmark baseline.
//!
//! Detection runs once per process ([`active_kernel`]); the
//! `RSB_GF256_KERNEL` environment variable
//! (`scalar`/`swar`/`ssse3`/`avx2`/`gfni`) or [`force_kernel`] pins a
//! specific kernel for benchmarks and tests.
//!
//! # Multi-row accumulation
//!
//! [`mul_acc_multi`] computes `dsts[r][i] ^= coeffs[r] · src[i]` for up to
//! four destination rows per pass over the source. Erasure-code encoding is
//! memory-bound at vector speeds: row-at-a-time encoding re-reads the source
//! once per parity row, while the interleaved form reads it once per group
//! of rows, roughly halving memory traffic for n ≫ k.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
mod simd;

/// The primitive polynomial 0x11d, i.e. `x⁸ + x⁴ + x³ + x² + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Compile-time generation of the exp/log tables for the field.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the table so `exp[log a + log b]` needs no modular reduction.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();

/// Antilog table: `EXP[i] = g^i` for the generator `g = 2`, doubled in
/// length so that products of logs never need reduction mod 255.
pub const EXP: [u8; 512] = TABLES.0;

/// Log table: `LOG[x] = log_g x` for `x != 0`. `LOG[0]` is 0 and must not
/// be used; callers guard against zero operands.
pub const LOG: [u8; 256] = TABLES.1;

/// `const`-context multiply used to build the nibble product tables.
const fn mul_const(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Compile-time generation of the per-coefficient nibble product tables.
const fn build_nibble_tables() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut x = 0;
        while x < 16 {
            lo[c][x] = mul_const(c as u8, x as u8);
            hi[c][x] = mul_const(c as u8, (x << 4) as u8);
            x += 1;
        }
        c += 1;
    }
    (lo, hi)
}

const NIBBLE_TABLES: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_nibble_tables();

/// Compile-time generation of the per-coefficient GF(2) bit-matrices for
/// the GFNI affine kernel. Multiplication by a constant `c` is GF(2)-linear
/// in the bits of the other operand, so it is exactly an 8×8 bit-matrix —
/// the operand shape `vgf2p8affineqb` applies to every byte of a vector.
///
/// Bit layout follows the instruction: output bit `i` of a transformed byte
/// `x` is `parity(matrix.byte[7 - i] & x)`, so byte `7 - i` of each `u64`
/// holds (as a mask over the input bits) row `i` of the multiply-by-`c` map.
const fn build_mul_matrices() -> [u64; 256] {
    let mut matrices = [0u64; 256];
    let mut c = 0;
    while c < 256 {
        let mut word = 0u64;
        let mut i = 0; // output bit
        while i < 8 {
            let mut row = 0u8;
            let mut j = 0; // input bit
            while j < 8 {
                if (mul_const(c as u8, 1 << j) >> i) & 1 == 1 {
                    row |= 1 << j;
                }
                j += 1;
            }
            word |= (row as u64) << ((7 - i) * 8);
            i += 1;
        }
        matrices[c] = word;
        c += 1;
    }
    matrices
}

/// Per-coefficient 8×8 GF(2) bit-matrices: `MUL_MATRIX[c]`, applied to a
/// byte `x` by `vgf2p8affineqb` (or the scalar parity fold in the tests),
/// yields `c · x` in this crate's 0x11D field: output bit `i` is
/// `parity(MUL_MATRIX[c].byte[7 - i] & x)`.
pub const MUL_MATRIX: [u64; 256] = build_mul_matrices();

/// Low-nibble product table: `MUL_LO[c][x] = c · x` for `x < 16`.
///
/// Together with [`MUL_HI`] this splits any product into two 16-entry
/// lookups — `c · s = MUL_LO[c][s & 0xf] ^ MUL_HI[c][s >> 4]` — which is
/// exactly the shape `pshufb` evaluates 16 (or 32) lanes at a time.
pub const MUL_LO: [[u8; 16]; 256] = NIBBLE_TABLES.0;

/// High-nibble product table: `MUL_HI[c][x] = c · (x << 4)` for `x < 16`.
/// See [`MUL_LO`].
pub const MUL_HI: [[u8; 16]; 256] = NIBBLE_TABLES.1;

/// Adds two field elements (XOR). Subtraction is identical.
///
/// ```
/// assert_eq!(rsb_coding::gf256::add(0x53, 0xca), 0x99);
/// ```
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts `b` from `a`; in characteristic 2 this equals [`add`].
#[inline]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// ```
/// use rsb_coding::gf256::mul;
/// assert_eq!(mul(0, 17), 0);
/// assert_eq!(mul(1, 17), 17);
/// assert_eq!(mul(3, 7), 9); // (x+1)(x²+x+1) = x³+2x²+2x+1 ≡ x³+1
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Raises `a` to the power `e`.
///
/// ```
/// use rsb_coding::gf256::pow;
/// assert_eq!(pow(2, 8), 0x1d); // x⁸ ≡ x⁴+x³+x²+1 (mod 0x11d)
/// assert_eq!(pow(0, 0), 1);
/// ```
#[inline]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u64 * e as u64 % 255;
    EXP[l as usize]
}

/// Computes the dot product `Σ aᵢ·bᵢ` of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= mul(x, y);
    }
    acc
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

/// A bulk GF(256) multiply kernel — the implementation [`mul_acc`] and
/// [`scale`] dispatch to.
///
/// All kernels compute byte-for-byte identical results (proven exhaustively
/// by the crate's differential tests); they differ only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The original per-byte `EXP[LOG[c] + LOG[s]]` loop. Reference and
    /// benchmark baseline; never auto-selected.
    Scalar,
    /// Portable `u64` SWAR: 8 byte lanes per step, branchless
    /// shift-and-xor doubling, nibble-table tail. The fallback everywhere.
    Swar,
    /// x86-64 SSSE3 `pshufb` nibble lookup, 16 bytes per step.
    Ssse3,
    /// x86-64 AVX2 `vpshufb` nibble lookup, 32 bytes per step.
    Avx2,
    /// x86-64 GFNI `vgf2p8affineqb` bit-matrix transform, 32 bytes per
    /// step. One instruction replaces the whole nibble-shuffle sequence.
    Gfni,
}

impl Kernel {
    const ALL: [Kernel; 5] = [
        Kernel::Scalar,
        Kernel::Swar,
        Kernel::Ssse3,
        Kernel::Avx2,
        Kernel::Gfni,
    ];

    /// Human-readable kernel name (`"scalar"`, `"swar"`, `"ssse3"`,
    /// `"avx2"`, `"gfni"`); the inverse of [`Kernel::by_name`].
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Ssse3 => "ssse3",
            Kernel::Avx2 => "avx2",
            Kernel::Gfni => "gfni",
        }
    }

    /// Parses a kernel name as accepted in `RSB_GF256_KERNEL`.
    pub fn by_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn as_u8(self) -> u8 {
        match self {
            Kernel::Scalar => 0,
            Kernel::Swar => 1,
            Kernel::Ssse3 => 2,
            Kernel::Avx2 => 3,
            Kernel::Gfni => 4,
        }
    }

    fn from_u8(v: u8) -> Kernel {
        Kernel::ALL[v as usize]
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sentinel meaning "detection has not run yet".
const KERNEL_UNRESOLVED: u8 = u8::MAX;

static ACTIVE_KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNRESOLVED);

/// Whether `kernel` can run on this machine. [`Kernel::Scalar`] and
/// [`Kernel::Swar`] are always available; the vector kernels require
/// x86-64 with the corresponding feature at runtime.
pub fn kernel_available(kernel: Kernel) -> bool {
    match kernel {
        Kernel::Scalar | Kernel::Swar => true,
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => is_x86_feature_detected!("ssse3"),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => is_x86_feature_detected!("avx2"),
        // The kernel works in 256-bit registers, so it needs AVX2 on top
        // of the GF(2⁸) instructions themselves.
        #[cfg(target_arch = "x86_64")]
        Kernel::Gfni => is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 | Kernel::Gfni => false,
    }
}

/// Every kernel runnable on this machine, in increasing-preference order.
pub fn available_kernels() -> Vec<Kernel> {
    Kernel::ALL
        .iter()
        .copied()
        .filter(|&k| kernel_available(k))
        .collect()
}

fn detect_kernel() -> Kernel {
    if let Ok(name) = std::env::var("RSB_GF256_KERNEL") {
        if let Some(k) = Kernel::by_name(name.trim()) {
            if kernel_available(k) {
                return k;
            }
        }
        // Unknown or unavailable override: fall through to detection rather
        // than failing library initialization.
    }
    #[cfg(target_arch = "x86_64")]
    {
        if kernel_available(Kernel::Gfni) {
            return Kernel::Gfni;
        }
        if is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if is_x86_feature_detected!("ssse3") {
            return Kernel::Ssse3;
        }
    }
    Kernel::Swar
}

/// The kernel [`mul_acc`] and [`scale`] currently dispatch to.
///
/// Resolved once per process (runtime CPU feature detection, overridable via
/// the `RSB_GF256_KERNEL` environment variable) and cached in an atomic, so
/// the per-call cost is one relaxed load.
pub fn active_kernel() -> Kernel {
    // audit:allow(atomics-relaxed) — a pure value cache: every thread
    // that races the unresolved state re-runs detection and stores the
    // same answer; kernels are stateless fns, nothing is guarded.
    match ACTIVE_KERNEL.load(Ordering::Relaxed) {
        KERNEL_UNRESOLVED => {
            let k = detect_kernel();
            // audit:allow(atomics-relaxed) — see the load above.
            ACTIVE_KERNEL.store(k.as_u8(), Ordering::Relaxed);
            k
        }
        v => Kernel::from_u8(v),
    }
}

/// Pins dispatch to a specific kernel — a benchmark/test hook.
///
/// Returns `false` (leaving dispatch unchanged) if the kernel is not
/// available on this machine. Affects the whole process; pair with
/// [`reset_kernel`] to restore auto-detection.
pub fn force_kernel(kernel: Kernel) -> bool {
    if !kernel_available(kernel) {
        return false;
    }
    // audit:allow(atomics-relaxed) — test/bench hook; see `active_kernel`.
    ACTIVE_KERNEL.store(kernel.as_u8(), Ordering::Relaxed);
    true
}

/// Clears any forced kernel; the next [`active_kernel`] call re-detects.
pub fn reset_kernel() {
    // audit:allow(atomics-relaxed) — test/bench hook; see `active_kernel`.
    ACTIVE_KERNEL.store(KERNEL_UNRESOLVED, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Bulk operations
// ---------------------------------------------------------------------------

/// Computes `dst[i] ^= coeff * src[i]` for every byte — the inner loop of
/// all encode/decode paths. Dispatches to the fastest available [`Kernel`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc on unequal lengths");
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        xor_slices(dst, src);
        return;
    }
    dispatch_mul_acc(active_kernel(), dst, src, coeff);
}

/// Scales every byte of `buf` by `coeff` in place. Dispatches like
/// [`mul_acc`].
pub fn scale(buf: &mut [u8], coeff: u8) {
    if coeff == 1 {
        return;
    }
    if coeff == 0 {
        buf.fill(0);
        return;
    }
    dispatch_scale(active_kernel(), buf, coeff);
}

/// Runs [`mul_acc`] through one specific kernel, bypassing dispatch — the
/// hook the differential tests and kernel benchmarks use.
///
/// # Panics
///
/// Panics if the slices have different lengths or the kernel is unavailable
/// on this machine (see [`kernel_available`]).
pub fn mul_acc_with(kernel: Kernel, dst: &mut [u8], src: &[u8], coeff: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc on unequal lengths");
    assert!(
        kernel_available(kernel),
        "kernel {kernel} unavailable on this machine"
    );
    dispatch_mul_acc(kernel, dst, src, coeff);
}

/// Runs [`scale`] through one specific kernel, bypassing dispatch.
///
/// # Panics
///
/// Panics if the kernel is unavailable on this machine.
pub fn scale_with(kernel: Kernel, buf: &mut [u8], coeff: u8) {
    assert!(
        kernel_available(kernel),
        "kernel {kernel} unavailable on this machine"
    );
    dispatch_scale(kernel, buf, coeff);
}

fn dispatch_mul_acc(kernel: Kernel, dst: &mut [u8], src: &[u8], coeff: u8) {
    match kernel {
        Kernel::Scalar => mul_acc_scalar(dst, src, coeff),
        Kernel::Swar => mul_acc_swar(dst, src, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => simd::mul_acc_ssse3(dst, src, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => simd::mul_acc_avx2(dst, src, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Gfni => simd::mul_acc_gfni(dst, src, coeff),
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 | Kernel::Gfni => {
            unreachable!("vector kernels are x86-64 only")
        }
    }
}

fn dispatch_scale(kernel: Kernel, buf: &mut [u8], coeff: u8) {
    match kernel {
        Kernel::Scalar => scale_scalar(buf, coeff),
        Kernel::Swar => scale_swar(buf, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => simd::scale_ssse3(buf, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => simd::scale_avx2(buf, coeff),
        #[cfg(target_arch = "x86_64")]
        Kernel::Gfni => simd::scale_gfni(buf, coeff),
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 | Kernel::Gfni => {
            unreachable!("vector kernels are x86-64 only")
        }
    }
}

/// The widest row group the interleaved kernels process per pass over the
/// source. [`mul_acc_multi`] splits larger batches into groups of this size.
pub const MAX_INTERLEAVED_ROWS: usize = 4;

/// Computes `dsts[r][i] ^= coeffs[r] · src[i]` for every destination row —
/// the multi-row inner loop of erasure-code encoding. The interleaved
/// kernels read each source chunk **once per group of up to
/// [`MAX_INTERLEAVED_ROWS`] rows** instead of once per row, which is where
/// the memory-traffic saving over repeated [`mul_acc`] calls comes from.
///
/// Results are byte-for-byte identical to calling [`mul_acc`] once per row
/// (proven exhaustively by the differential tests).
///
/// # Panics
///
/// Panics if `dsts` and `coeffs` have different lengths, or any destination
/// row's length differs from `src`'s.
pub fn mul_acc_multi(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    check_multi(dsts, src, coeffs);
    let kernel = active_kernel();
    let mut start = 0;
    while start < coeffs.len() {
        let end = (start + MAX_INTERLEAVED_ROWS).min(coeffs.len());
        dispatch_mul_acc_multi(kernel, &mut dsts[start..end], src, &coeffs[start..end]);
        start = end;
    }
}

/// Runs [`mul_acc_multi`] through one specific kernel, bypassing dispatch —
/// the hook the differential tests and kernel benchmarks use.
///
/// # Panics
///
/// Panics on the [`mul_acc_multi`] length mismatches, or if the kernel is
/// unavailable on this machine (see [`kernel_available`]).
pub fn mul_acc_multi_with(kernel: Kernel, dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    check_multi(dsts, src, coeffs);
    assert!(
        kernel_available(kernel),
        "kernel {kernel} unavailable on this machine"
    );
    let mut start = 0;
    while start < coeffs.len() {
        let end = (start + MAX_INTERLEAVED_ROWS).min(coeffs.len());
        dispatch_mul_acc_multi(kernel, &mut dsts[start..end], src, &coeffs[start..end]);
        start = end;
    }
}

fn check_multi(dsts: &[&mut [u8]], src: &[u8], coeffs: &[u8]) {
    assert_eq!(
        dsts.len(),
        coeffs.len(),
        "mul_acc_multi row/coefficient count mismatch"
    );
    for d in dsts {
        assert_eq!(d.len(), src.len(), "mul_acc_multi on unequal lengths");
    }
}

/// Dispatch for one row group (`dsts.len() <= MAX_INTERLEAVED_ROWS`).
fn dispatch_mul_acc_multi(kernel: Kernel, dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    debug_assert!(dsts.len() <= MAX_INTERLEAVED_ROWS);
    match kernel {
        // The reference semantics: row at a time through the scalar loop.
        Kernel::Scalar => {
            for (d, &c) in dsts.iter_mut().zip(coeffs) {
                mul_acc_scalar(d, src, c);
            }
        }
        Kernel::Swar => mul_acc_multi_swar(dsts, src, coeffs),
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => simd::mul_acc_multi_ssse3(dsts, src, coeffs),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => simd::mul_acc_multi_avx2(dsts, src, coeffs),
        #[cfg(target_arch = "x86_64")]
        Kernel::Gfni => simd::mul_acc_multi_gfni(dsts, src, coeffs),
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 | Kernel::Gfni => {
            unreachable!("vector kernels are x86-64 only")
        }
    }
}

/// `dst ^= src`, 8 bytes at a time.
fn xor_slices(dst: &mut [u8], src: &[u8]) {
    let mut dw = dst.chunks_exact_mut(8);
    let mut sw = src.chunks_exact(8);
    for (d, s) in (&mut dw).zip(&mut sw) {
        let x = u64::from_le_bytes((&*d).try_into().unwrap())
            ^ u64::from_le_bytes(s.try_into().unwrap());
        d.copy_from_slice(&x.to_le_bytes());
    }
    for (d, &s) in dw.into_remainder().iter_mut().zip(sw.remainder()) {
        *d ^= s;
    }
}

/// Multiplies all 8 byte lanes of `w` by `coeff`: branchless
/// shift-and-conditionally-xor over the bits of `coeff`, doubling the lane
/// polynomial (mod 0x11d) each step.
#[inline]
fn mul_word(w: u64, coeff: u8) -> u64 {
    const MSB: u64 = 0x8080_8080_8080_8080;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    let mut acc = 0u64;
    let mut p = w;
    let mut c = u32::from(coeff);
    loop {
        // All-ones when the current coefficient bit is set.
        acc ^= p & 0u64.wrapping_sub(u64::from(c & 1));
        c >>= 1;
        if c == 0 {
            return acc;
        }
        // Per-lane ×2: shift, then reduce lanes that overflowed by 0x1d.
        // `(p & MSB) >> 7` is 0 or 1 per lane, so the multiply by 0x1d
        // cannot carry across lanes.
        p = ((p & LOW7) << 1) ^ ((p & MSB) >> 7).wrapping_mul(0x1d);
    }
}

/// [`mul_acc`] through the scalar `EXP`/`LOG` kernel — the original
/// implementation, kept as the differential reference and bench baseline.
fn mul_acc_scalar(dst: &mut [u8], src: &[u8], coeff: u8) {
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d ^= s;
        }
        return;
    }
    let lc = LOG[coeff as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if s != 0 {
            *d ^= EXP[lc + LOG[s as usize] as usize];
        }
    }
}

/// [`scale`] through the scalar `EXP`/`LOG` kernel.
fn scale_scalar(buf: &mut [u8], coeff: u8) {
    if coeff == 1 {
        return;
    }
    if coeff == 0 {
        buf.fill(0);
        return;
    }
    let lc = LOG[coeff as usize] as usize;
    for b in buf.iter_mut() {
        if *b != 0 {
            *b = EXP[lc + LOG[*b as usize] as usize];
        }
    }
}

/// Four independent [`mul_word`] chains in lockstep. The doubling chain is
/// serial per word (8 dependent steps), so a single-word loop is
/// latency-bound; running four words side by side restores instruction-level
/// parallelism (and auto-vectorizes on wider targets).
#[inline]
fn mul_word4(w: [u64; 4], coeff: u8) -> [u64; 4] {
    const MSB: u64 = 0x8080_8080_8080_8080;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    let mut acc = [0u64; 4];
    let mut p = w;
    let mut c = u32::from(coeff);
    loop {
        let mask = 0u64.wrapping_sub(u64::from(c & 1));
        for lane in 0..4 {
            acc[lane] ^= p[lane] & mask;
        }
        c >>= 1;
        if c == 0 {
            return acc;
        }
        for lane in &mut p {
            *lane = ((*lane & LOW7) << 1) ^ ((*lane & MSB) >> 7).wrapping_mul(0x1d);
        }
    }
}

fn load4(bytes: &[u8]) -> [u64; 4] {
    let mut w = [0u64; 4];
    for (lane, chunk) in bytes.chunks_exact(8).enumerate() {
        w[lane] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    w
}

fn store4(bytes: &mut [u8], w: [u64; 4]) {
    for (lane, chunk) in bytes.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&w[lane].to_le_bytes());
    }
}

/// [`mul_acc`] through the portable `u64` SWAR kernel: 32 bytes per step
/// (4 × 8 lanes), then single words, then a nibble-table tail.
fn mul_acc_swar(dst: &mut [u8], src: &[u8], coeff: u8) {
    let mut dq = dst.chunks_exact_mut(32);
    let mut sq = src.chunks_exact(32);
    for (d, s) in (&mut dq).zip(&mut sq) {
        let prod = mul_word4(load4(s), coeff);
        let mut cur = load4(d);
        for lane in 0..4 {
            cur[lane] ^= prod[lane];
        }
        store4(d, cur);
    }
    let mut dw = dq.into_remainder().chunks_exact_mut(8);
    let mut sw = sq.remainder().chunks_exact(8);
    for (d, s) in (&mut dw).zip(&mut sw) {
        let w = u64::from_le_bytes(s.try_into().unwrap());
        let cur = u64::from_le_bytes((&*d).try_into().unwrap());
        d.copy_from_slice(&(cur ^ mul_word(w, coeff)).to_le_bytes());
    }
    let lo = &MUL_LO[coeff as usize];
    let hi = &MUL_HI[coeff as usize];
    for (d, &s) in dw.into_remainder().iter_mut().zip(sw.remainder()) {
        *d ^= lo[(s & 0x0f) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// [`mul_acc_multi`] through the portable SWAR kernel: each 32-byte source
/// quad is loaded once and multiplied into every row of the group, so the
/// source traffic is paid once per group instead of once per row.
fn mul_acc_multi_swar(dsts: &mut [&mut [u8]], src: &[u8], coeffs: &[u8]) {
    let len = src.len();
    let quads = len - len % 32;
    let mut i = 0;
    while i < quads {
        let s = load4(&src[i..i + 32]);
        for (d, &c) in dsts.iter_mut().zip(coeffs) {
            let prod = mul_word4(s, c);
            let row = &mut d[i..i + 32];
            let mut cur = load4(row);
            for lane in 0..4 {
                cur[lane] ^= prod[lane];
            }
            store4(row, cur);
        }
        i += 32;
    }
    for j in quads..len {
        let s = src[j];
        for (d, &c) in dsts.iter_mut().zip(coeffs) {
            d[j] ^= MUL_LO[c as usize][(s & 0x0f) as usize] ^ MUL_HI[c as usize][(s >> 4) as usize];
        }
    }
}

/// [`scale`] through the portable `u64` SWAR kernel.
fn scale_swar(buf: &mut [u8], coeff: u8) {
    let mut quads = buf.chunks_exact_mut(32);
    for q in &mut quads {
        let prod = mul_word4(load4(q), coeff);
        store4(q, prod);
    }
    let mut chunks = quads.into_remainder().chunks_exact_mut(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes((&*c).try_into().unwrap());
        c.copy_from_slice(&mul_word(w, coeff).to_le_bytes());
    }
    let lo = &MUL_LO[coeff as usize];
    let hi = &MUL_HI[coeff as usize];
    for b in chunks.into_remainder().iter_mut() {
        *b = lo[(*b & 0x0f) as usize] ^ hi[(*b >> 4) as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: all 255 powers distinct.
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert!(!seen[v], "generator order < 255 at {i}");
            seen[v] = true;
        }
        assert!(!seen[0], "zero must never appear as a power");
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_associative_sampled() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_sampled() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(17) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_exhaustive() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        for a in (0..=255u8).step_by(3) {
            for b in 1..=255u8 {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(5, 0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inv_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 5, 87, 255] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_large_exponent_wraps() {
        // a^255 = 1 for a != 0 (Fermat in GF(256)).
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
            assert_eq!(pow(a, 256), a);
        }
    }

    #[test]
    fn dot_product_basics() {
        assert_eq!(dot(&[1, 2, 3], &[1, 1, 1]), 1 ^ 2 ^ 3);
        assert_eq!(dot(&[], &[]), 0);
    }

    #[test]
    fn nibble_tables_cover_all_products() {
        for c in 0..=255u8 {
            for s in 0..=255u8 {
                let via_tables =
                    MUL_LO[c as usize][(s & 0x0f) as usize] ^ MUL_HI[c as usize][(s >> 4) as usize];
                assert_eq!(via_tables, mul(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn mul_word_matches_scalar_lanes() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for coeff in 0..=255u8 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let w = state;
            let prod = mul_word(w, coeff);
            for lane in 0..8 {
                let s = (w >> (8 * lane)) as u8;
                assert_eq!(
                    (prod >> (8 * lane)) as u8,
                    mul(coeff, s),
                    "coeff={coeff} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src = [1u8, 0, 255, 87, 13];
        for coeff in [0u8, 1, 2, 200] {
            let mut dst = [9u8, 9, 9, 9, 9];
            mul_acc(&mut dst, &src, coeff);
            for i in 0..src.len() {
                assert_eq!(dst[i], 9 ^ mul(coeff, src[i]));
            }
        }
    }

    #[test]
    fn scale_matches_mul() {
        let mut buf = [3u8, 0, 200, 255];
        scale(&mut buf, 7);
        assert_eq!(buf, [mul(3, 7), 0, mul(200, 7), mul(255, 7)]);
        scale(&mut buf, 0);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::by_name(k.name()), Some(k));
            assert_eq!(Kernel::from_u8(k.as_u8()), k);
        }
        assert_eq!(Kernel::by_name("avx512"), None);
    }

    // Pure-bit check of the GFNI matrices — runs on machines *without*
    // GFNI too, so the table itself is verified everywhere even when the
    // hardware kernel never executes.
    #[test]
    fn mul_matrices_encode_multiplication_exhaustively() {
        for c in 0..=255u8 {
            let m = MUL_MATRIX[c as usize];
            for x in 0..=255u8 {
                let mut out = 0u8;
                for i in 0..8u32 {
                    let row = (m >> ((7 - i) * 8)) as u8;
                    out |= ((((row & x).count_ones()) as u8) & 1) << i;
                }
                assert_eq!(out, mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn mul_acc_multi_matches_sequential_rows() {
        let src: Vec<u8> = (0..77u8).map(|i| i.wrapping_mul(37) ^ 0x5a).collect();
        let coeffs = [0u8, 1, 2, 0x1d, 87, 200, 255];
        let mut expected: Vec<Vec<u8>> = coeffs.iter().map(|_| vec![0x33; src.len()]).collect();
        for (row, &c) in expected.iter_mut().zip(&coeffs) {
            mul_acc(row, &src, c);
        }
        let mut actual: Vec<Vec<u8>> = coeffs.iter().map(|_| vec![0x33; src.len()]).collect();
        let mut rows: Vec<&mut [u8]> = actual.iter_mut().map(Vec::as_mut_slice).collect();
        mul_acc_multi(&mut rows, &src, &coeffs);
        assert_eq!(actual, expected);
    }

    #[test]
    fn portable_kernels_always_available() {
        let avail = available_kernels();
        assert!(avail.contains(&Kernel::Scalar));
        assert!(avail.contains(&Kernel::Swar));
    }

    // All force/reset interactions live in ONE test: dispatch state is
    // process-global, and concurrent force calls from parallel tests could
    // otherwise observe each other. (Results are unaffected either way —
    // every kernel computes identical bytes.)
    #[test]
    fn force_and_reset_kernel() {
        assert!(force_kernel(Kernel::Swar));
        assert_eq!(active_kernel(), Kernel::Swar);
        assert!(force_kernel(Kernel::Scalar));
        assert_eq!(active_kernel(), Kernel::Scalar);
        reset_kernel();
        let redetected = active_kernel();
        assert!(available_kernels().contains(&redetected));
        // Auto-detection never picks Scalar — unless the environment
        // explicitly pins it (a documented RSB_GF256_KERNEL value).
        if std::env::var("RSB_GF256_KERNEL").as_deref() != Ok("scalar") {
            assert_ne!(redetected, Kernel::Scalar);
        }
    }
}
