//! Code blocks — the paper's domain `E`.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A block index `i ∈ N` (the paper uses the naturals so that rateless
/// codes, with their unbounded block sequence, are captured).
pub type BlockIndex = u32;

/// A code block `e = E(v, i)` together with its index.
///
/// The paper's storage-cost measure (Definition 2) counts `|e|` — the number
/// of bits in the block — for every block instance held by a base object or
/// client; [`Block::size_bits`] is exactly that quantity. The index is
/// *metadata* and is not counted.
///
/// ```
/// use rsb_coding::Block;
/// let b = Block::new(3, vec![0xab; 16]);
/// assert_eq!(b.index(), 3);
/// assert_eq!(b.size_bits(), 128);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    index: BlockIndex,
    data: Bytes,
}

impl Block {
    /// Creates a block with the given index and payload.
    pub fn new(index: BlockIndex, data: impl Into<Bytes>) -> Self {
        Block {
            index,
            data: data.into(),
        }
    }

    /// The block number `i` passed to `E(v, i)`.
    pub fn index(&self) -> BlockIndex {
        self.index
    }

    /// The coded payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The paper's `|e|`: payload size in bits.
    pub fn size_bits(&self) -> u64 {
        8 * self.data.len() as u64
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prefix: Vec<u8> = self.data.iter().take(4).copied().collect();
        write!(
            f,
            "Block(#{}, {} B, {:02x?}…)",
            self.index,
            self.data.len(),
            prefix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting() {
        let b = Block::new(0, vec![1, 2, 3]);
        assert_eq!(b.size_bits(), 24);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Block::new(9, Vec::new()).is_empty());
    }

    #[test]
    fn equality_includes_index() {
        let a = Block::new(0, vec![1]);
        let b = Block::new(1, vec![1]);
        assert_ne!(a, b);
        assert_eq!(a, Block::new(0, vec![1]));
    }

    #[test]
    fn debug_is_short() {
        let b = Block::new(7, vec![0u8; 10_000]);
        assert!(format!("{b:?}").len() < 80);
    }
}
