//! Dense matrices over GF(2⁸) with Gauss–Jordan inversion.
//!
//! Used to derive systematic Reed–Solomon encoding matrices and to solve
//! the linear systems arising in decoding (both the fixed-rate and the
//! rateless codes).

use crate::gf256;

/// A dense row-major matrix over GF(2⁸).
///
/// ```
/// use rsb_coding::matrix::Matrix;
/// let id = Matrix::identity(3);
/// let v = Matrix::vandermonde(5, 3);
/// assert_eq!(&v * &id, v);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:02x?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let nrows = rows.len();
        let data = rows.into_iter().flatten().collect();
        Matrix {
            rows: nrows,
            cols,
            data,
        }
    }

    /// Creates the `rows × cols` Vandermonde matrix with evaluation points
    /// `0, 1, …, rows-1`: entry `(i, j) = iʲ`.
    ///
    /// Any `cols` rows with distinct evaluation points are linearly
    /// independent, the property underpinning MDS decoding.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (GF(2⁸) has only 256 distinct points).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, gf256::pow(i as u8, j as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_rows(indices.iter().map(|&i| self.row(i).to_vec()).collect())
    }

    /// Multiplies `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        // Row-major accumulation: out.row(i) ^= self[i][l] · rhs.row(l),
        // each row update running through the dispatched bulk kernel.
        for i in 0..self.rows {
            let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for l in 0..self.cols {
                gf256::mul_acc(dst, rhs.row(l), self.get(i, l));
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut out = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                out.swap_rows(pivot, col);
            }
            let p = work.get(col, col);
            let pinv = gf256::inv(p);
            work.scale_row(col, pinv);
            out.scale_row(col, pinv);
            for r in 0..n {
                if r != col {
                    let factor = work.get(r, col);
                    if factor != 0 {
                        work.add_scaled_row(r, col, factor);
                        out.add_scaled_row(r, col, factor);
                    }
                }
            }
        }
        Some(out)
    }

    /// Returns a nonzero vector `x` with `self · x = 0`, or `None` if the
    /// columns are linearly independent (trivial kernel).
    ///
    /// Used by the executable pigeonhole argument (the paper's Claim 1):
    /// for a linear code, two `I`-colliding values differ by a kernel
    /// element of the `I`-restricted encoding map.
    pub fn null_vector(&self) -> Option<Vec<u8>> {
        // Reduce to row-echelon form, tracking pivot columns.
        let mut work = self.clone();
        let mut pivot_col_of_row: Vec<usize> = Vec::new();
        let mut row = 0;
        for col in 0..work.cols {
            if row == work.rows {
                break;
            }
            if let Some(p) = (row..work.rows).find(|&r| work.get(r, col) != 0) {
                work.swap_rows(p, row);
                let pinv = gf256::inv(work.get(row, col));
                work.scale_row(row, pinv);
                for r in 0..work.rows {
                    if r != row {
                        let factor = work.get(r, col);
                        if factor != 0 {
                            work.add_scaled_row(r, row, factor);
                        }
                    }
                }
                pivot_col_of_row.push(col);
                row += 1;
            }
        }
        let pivots: std::collections::HashSet<usize> = pivot_col_of_row.iter().copied().collect();
        let free = (0..work.cols).find(|c| !pivots.contains(c))?;
        // Back-substitute with the free variable set to 1.
        let mut x = vec![0u8; work.cols];
        x[free] = 1;
        for (r, &pc) in pivot_col_of_row.iter().enumerate() {
            // x[pc] = -Σ_{c != pc} work[r][c]·x[c]; negation is identity.
            x[pc] = gf256::mul(work.get(r, free), 1);
        }
        Some(x)
    }

    /// Returns the rank of the matrix (Gaussian elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        let mut rank = 0;
        for col in 0..work.cols {
            if rank == work.rows {
                break;
            }
            if let Some(pivot) = (rank..work.rows).find(|&r| work.get(r, col) != 0) {
                work.swap_rows(pivot, rank);
                let pinv = gf256::inv(work.get(rank, col));
                work.scale_row(rank, pinv);
                for r in 0..work.rows {
                    if r != rank {
                        let factor = work.get(r, col);
                        if factor != 0 {
                            work.add_scaled_row(r, rank, factor);
                        }
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        let start = r * self.cols;
        gf256::scale(&mut self.data[start..start + self.cols], factor);
    }

    /// `row[dst] ^= factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u8) {
        let (dst_row, src_row) = if dst < src {
            let (a, b) = self.data.split_at_mut(src * self.cols);
            (
                &mut a[dst * self.cols..(dst + 1) * self.cols],
                &b[..self.cols],
            )
        } else {
            let (a, b) = self.data.split_at_mut(dst * self.cols);
            (
                &mut b[..self.cols],
                &a[src * self.cols..(src + 1) * self.cols],
            )
        };
        gf256::mul_acc(dst_row, src_row, factor);
    }
}

impl std::ops::Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.multiply(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let v = Matrix::vandermonde(4, 4);
        let id = Matrix::identity(4);
        assert_eq!(&v * &id, v);
        assert_eq!(&id * &v, v);
    }

    #[test]
    fn vandermonde_shape() {
        let v = Matrix::vandermonde(6, 3);
        assert_eq!(v.rows(), 6);
        assert_eq!(v.cols(), 3);
        // Row i is [1, i, i²].
        for i in 0..6u8 {
            assert_eq!(v.get(i as usize, 0), 1);
            assert_eq!(v.get(i as usize, 1), i);
            assert_eq!(v.get(i as usize, 2), gf256::mul(i, i));
        }
    }

    #[test]
    fn inverse_of_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_roundtrip_vandermonde() {
        for n in 1..=8 {
            let v = Matrix::vandermonde(n, n);
            let vi = v.inverse().expect("vandermonde is invertible");
            assert_eq!(&v * &vi, Matrix::identity(n));
            assert_eq!(&vi * &v, Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        let z = Matrix::zero(3, 3);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn any_square_vandermonde_submatrix_invertible() {
        // The MDS property: any k rows of an n×k Vandermonde invert.
        let n = 12;
        let k = 4;
        let v = Matrix::vandermonde(n, k);
        // A few representative subsets.
        for subset in [
            vec![0, 1, 2, 3],
            vec![8, 9, 10, 11],
            vec![0, 5, 7, 11],
            vec![3, 4, 9, 10],
        ] {
            let sub = v.select_rows(&subset);
            assert!(
                sub.inverse().is_some(),
                "rows {subset:?} should be invertible"
            );
        }
    }

    #[test]
    fn rank_of_vandermonde() {
        assert_eq!(Matrix::vandermonde(6, 3).rank(), 3);
        assert_eq!(Matrix::vandermonde(3, 3).rank(), 3);
        assert_eq!(Matrix::zero(4, 4).rank(), 0);
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![1, 2, 3], vec![0, 1, 0]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn select_rows_preserves_content() {
        let v = Matrix::vandermonde(5, 2);
        let s = v.select_rows(&[4, 0]);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
    }

    #[test]
    fn multiply_known_case() {
        let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]);
        let b = Matrix::from_rows(vec![vec![5, 6], vec![7, 8]]);
        let c = &a * &b;
        // c[0][0] = 1*5 + 2*7 (in GF(256))
        assert_eq!(c.get(0, 0), gf256::mul(1, 5) ^ gf256::mul(2, 7));
        assert_eq!(c.get(1, 1), gf256::mul(3, 6) ^ gf256::mul(4, 8));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn null_vector_of_wide_matrix() {
        // More columns than rows: a kernel element must exist.
        for (rows, cols) in [(1usize, 2usize), (2, 4), (3, 5)] {
            let m = Matrix::vandermonde(rows, cols);
            let x = m.null_vector().expect("wide matrix has a kernel");
            assert!(x.iter().any(|&v| v != 0), "kernel vector must be nonzero");
            // Verify A·x = 0.
            for r in 0..rows {
                assert_eq!(gf256::dot(m.row(r), &x), 0, "{rows}x{cols} row {r}");
            }
        }
    }

    #[test]
    fn null_vector_none_for_full_column_rank() {
        assert!(Matrix::identity(3).null_vector().is_none());
        assert!(Matrix::vandermonde(5, 3).null_vector().is_none());
    }

    #[test]
    fn null_vector_of_singular_square_matrix() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        let x = m.null_vector().unwrap();
        for r in 0..2 {
            assert_eq!(gf256::dot(m.row(r), &x), 0);
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::identity(2));
        assert!(s.contains("Matrix 2x2"));
    }
}
