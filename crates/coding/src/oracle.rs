//! The encoder/decoder oracles of the paper's Definition 1.
//!
//! A `write(v)` at client `c` initializes an `oracleE(c, w)` exposing
//! `get(i) = E(v, i)`; a `read()` initializes an `oracleD(c, w)` exposing
//! `push(e, i)` and `done(i)`. Oracle state is *not* counted in the storage
//! cost (the value trivially exists at its source and destination); what the
//! oracles buy us is bookkeeping: every block ever produced is traceable to
//! the `(write, index)` pair that produced it, which is the paper's *source
//! function* (Definition 4) and the backbone of the lower-bound experiments.

use crate::{Block, BlockIndex, Code, CodingError, Value};

/// A record of one oracle interaction, for audit trails and the
/// lower-bound source function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleEvent {
    /// `get(i)` returned a block of this many bits.
    Get {
        /// The block index requested.
        index: BlockIndex,
        /// Size of the returned block, in bits.
        size_bits: u64,
    },
    /// `push(e, i)` accepted a block into decode attempt `i`.
    Push {
        /// The decode-attempt tag.
        attempt: u64,
        /// Index of the pushed block.
        index: BlockIndex,
    },
    /// `done(i)` was called; `decoded` records success.
    Done {
        /// The decode-attempt tag.
        attempt: u64,
        /// Whether decoding produced a value (vs the paper's `⊥`).
        decoded: bool,
    },
}

/// The paper's `oracleE(c, w)`: produces code blocks of a single value.
///
/// Created at write invocation, expires (dropped) when the write completes.
///
/// ```
/// use rsb_coding::{EncoderOracle, ReedSolomon, Value};
/// # fn main() -> Result<(), rsb_coding::CodingError> {
/// let code = ReedSolomon::new(2, 4, 16)?;
/// let mut oracle = EncoderOracle::new(code, Value::seeded(5, 16))?;
/// let b = oracle.get(3)?;
/// assert_eq!(b.index(), 3);
/// assert_eq!(oracle.produced_indices(), &[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EncoderOracle<C: Code> {
    code: C,
    value: Value,
    produced: Vec<BlockIndex>,
    events: Vec<OracleEvent>,
}

impl<C: Code> EncoderOracle<C> {
    /// Initializes the oracle for one write operation.
    ///
    /// # Errors
    ///
    /// Fails if the value length does not match the code.
    pub fn new(code: C, value: Value) -> Result<Self, CodingError> {
        if value.len() != code.value_len() {
            return Err(CodingError::WrongValueLength {
                expected: code.value_len(),
                actual: value.len(),
            });
        }
        Ok(EncoderOracle {
            code,
            value,
            produced: Vec::new(),
            events: Vec::new(),
        })
    }

    /// The oracle's `get(i)`: returns `E(v, i)`.
    ///
    /// # Errors
    ///
    /// Fails for indices outside the code's domain.
    pub fn get(&mut self, index: BlockIndex) -> Result<Block, CodingError> {
        let block = self.code.encode_block(&self.value, index)?;
        self.produced.push(index);
        self.events.push(OracleEvent::Get {
            index,
            size_bits: block.size_bits(),
        });
        Ok(block)
    }

    /// The value being written (visible to the writer only; oracle state is
    /// cost-free in the paper's model).
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// All indices produced so far, in order — the raw material of the
    /// source function.
    pub fn produced_indices(&self) -> &[BlockIndex] {
        &self.produced
    }

    /// The full interaction log.
    pub fn events(&self) -> &[OracleEvent] {
        &self.events
    }
}

/// The paper's `oracleD(c, w)`: accumulates pushed blocks per decode
/// attempt and decodes on `done`.
///
/// ```
/// use rsb_coding::{Code, DecoderOracle, EncoderOracle, ReedSolomon, Value};
/// # fn main() -> Result<(), rsb_coding::CodingError> {
/// let code = ReedSolomon::new(2, 4, 16)?;
/// let v = Value::seeded(5, 16);
/// let mut enc = EncoderOracle::new(code.clone(), v.clone())?;
/// let mut dec = DecoderOracle::new(code);
/// dec.push(enc.get(1)?, 0);
/// assert_eq!(dec.done(0), None); // only one block: ⊥
/// dec.push(enc.get(2)?, 0);
/// assert_eq!(dec.done(0), Some(v));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecoderOracle<C: Code> {
    code: C,
    attempts: std::collections::BTreeMap<u64, Vec<Block>>,
    events: Vec<OracleEvent>,
}

impl<C: Code> DecoderOracle<C> {
    /// Initializes the oracle for one read operation.
    pub fn new(code: C) -> Self {
        DecoderOracle {
            code,
            attempts: std::collections::BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The oracle's `push(e, i)`: adds a block to decode attempt `i`.
    pub fn push(&mut self, block: Block, attempt: u64) {
        self.events.push(OracleEvent::Push {
            attempt,
            index: block.index(),
        });
        self.attempts.entry(attempt).or_default().push(block);
    }

    /// The oracle's `done(i)`: decodes `D({e | push(e, i)})`, returning
    /// `None` for the paper's `⊥`.
    pub fn done(&mut self, attempt: u64) -> Option<Value> {
        let blocks = self.attempts.get(&attempt).cloned().unwrap_or_default();
        let result = self.code.decode(&blocks).ok();
        self.events.push(OracleEvent::Done {
            attempt,
            decoded: result.is_some(),
        });
        result
    }

    /// Blocks accumulated in an attempt so far.
    pub fn pushed(&self, attempt: u64) -> &[Block] {
        self.attempts.get(&attempt).map_or(&[], Vec::as_slice)
    }

    /// The full interaction log.
    pub fn events(&self) -> &[OracleEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rateless, ReedSolomon, Replication};

    #[test]
    fn encoder_records_sources() {
        let code = ReedSolomon::new(2, 5, 10).unwrap();
        let mut enc = EncoderOracle::new(code, Value::seeded(1, 10)).unwrap();
        enc.get(4).unwrap();
        enc.get(0).unwrap();
        enc.get(4).unwrap();
        assert_eq!(enc.produced_indices(), &[4, 0, 4]);
        assert_eq!(enc.events().len(), 3);
    }

    #[test]
    fn encoder_rejects_mismatched_value() {
        let code = ReedSolomon::new(2, 5, 10).unwrap();
        assert!(EncoderOracle::new(code, Value::zeroed(11)).is_err());
    }

    #[test]
    fn decoder_attempts_are_independent() {
        let code = Replication::new(3, 6).unwrap();
        let v1 = Value::seeded(1, 6);
        let v2 = Value::seeded(2, 6);
        let mut enc1 = EncoderOracle::new(code.clone(), v1.clone()).unwrap();
        let mut enc2 = EncoderOracle::new(code.clone(), v2.clone()).unwrap();
        let mut dec = DecoderOracle::new(code);
        dec.push(enc1.get(0).unwrap(), 0);
        dec.push(enc2.get(1).unwrap(), 1);
        assert_eq!(dec.done(0), Some(v1));
        assert_eq!(dec.done(1), Some(v2));
        assert_eq!(dec.pushed(0).len(), 1);
        assert_eq!(dec.pushed(2), &[]);
    }

    #[test]
    fn decoder_bottom_on_empty_attempt() {
        let code = ReedSolomon::new(2, 4, 8).unwrap();
        let mut dec = DecoderOracle::new(code);
        assert_eq!(dec.done(7), None);
        assert!(matches!(
            dec.events().last(),
            Some(OracleEvent::Done {
                attempt: 7,
                decoded: false
            })
        ));
    }

    #[test]
    fn rateless_oracle_roundtrip() {
        let code = Rateless::new(3, 33).unwrap();
        let v = Value::seeded(9, 33);
        let mut enc = EncoderOracle::new(code.clone(), v.clone()).unwrap();
        let mut dec = DecoderOracle::new(code);
        for i in [100u32, 200, 300, 400] {
            dec.push(enc.get(i).unwrap(), 0);
        }
        assert_eq!(dec.done(0), Some(v));
    }
}
