//! A runtime-selectable handle over the safety checkers.
//!
//! The model checker in `rsb-mc` (and any other driver that picks the
//! condition to assert from configuration rather than at compile time)
//! needs the four safety checkers behind one value. [`Condition`] names
//! them and [`check`] dispatches.

use crate::atomicity::check_atomicity;
use crate::history::History;
use crate::regularity::{
    check_strong_regularity, check_strong_safety, check_weak_regularity, Violation,
};

/// A safety condition a history can be checked against, ordered weakest
/// to strongest (each implies the previous for the checkers' fragments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Strong safety (Appendix E): reads concurrent with no write return
    /// the latest completely-written value.
    StrongSafety,
    /// MWRegWeak: reads return a written-or-initial value that is not
    /// strictly superseded before the read began.
    WeakRegularity,
    /// MWRegWO: weak regularity plus write order (no new/old inversion
    /// between sequential writes observed by one read).
    StrongRegularity,
    /// Linearizability: one total order consistent with real time.
    Atomicity,
}

impl Condition {
    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Condition::StrongSafety => "strong-safety",
            Condition::WeakRegularity => "weak-regularity",
            Condition::StrongRegularity => "strong-regularity",
            Condition::Atomicity => "atomicity",
        }
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Checks `h` against `condition`.
///
/// # Errors
///
/// Returns the checker's [`Violation`] verbatim.
pub fn check(h: &History, condition: Condition) -> Result<(), Violation> {
    match condition {
        Condition::StrongSafety => check_strong_safety(h),
        Condition::WeakRegularity => check_weak_regularity(h),
        Condition::StrongRegularity => check_strong_regularity(h),
        Condition::Atomicity => check_atomicity(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryOp, OpKind};
    use rsb_coding::Value;

    fn v(seed: u64) -> Value {
        Value::seeded(seed, 8)
    }

    #[test]
    fn dispatch_matches_direct_checkers() {
        // One write fully before one read that returns it: passes all four.
        let ops = vec![
            HistoryOp {
                id: 0,
                client: 0,
                kind: OpKind::Write(v(1)),
                invoked_at: 0,
                returned_at: Some(5),
                read_value: None,
            },
            HistoryOp {
                id: 1,
                client: 1,
                kind: OpKind::Read,
                invoked_at: 6,
                returned_at: Some(9),
                read_value: Some(v(1)),
            },
        ];
        let h = History::new(Value::zeroed(8), ops).unwrap();
        for c in [
            Condition::StrongSafety,
            Condition::WeakRegularity,
            Condition::StrongRegularity,
            Condition::Atomicity,
        ] {
            check(&h, c).unwrap_or_else(|e| panic!("{c} should pass: {e}"));
        }
    }

    #[test]
    fn stale_read_fails_from_regularity_up() {
        // Write of v1 completes, then a later read returns v0: stale.
        let ops = vec![
            HistoryOp {
                id: 0,
                client: 0,
                kind: OpKind::Write(v(1)),
                invoked_at: 0,
                returned_at: Some(5),
                read_value: None,
            },
            HistoryOp {
                id: 1,
                client: 1,
                kind: OpKind::Read,
                invoked_at: 6,
                returned_at: Some(9),
                read_value: Some(Value::zeroed(8)),
            },
        ];
        let h = History::new(Value::zeroed(8), ops).unwrap();
        assert!(check(&h, Condition::WeakRegularity).is_err());
        assert!(check(&h, Condition::StrongRegularity).is_err());
        assert!(check(&h, Condition::Atomicity).is_err());
    }
}
