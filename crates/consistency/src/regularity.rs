//! Checkers for the register consistency conditions of the paper's
//! Appendix A: weak regularity (MWRegWeak), strong regularity (MWRegWO),
//! and strong safety.
//!
//! All three are decided exactly for histories whose written values are
//! pairwise distinct (and distinct from `v₀`), which every workload in
//! this repository guarantees; with duplicated values the observed write
//! of a read is ambiguous and the strong checks refuse rather than guess.

use crate::history::{History, HistoryOp};
use rsb_coding::Value;
use std::collections::{HashMap, HashSet};

/// A consistency violation (or a checker limitation), with enough context
/// to debug the offending schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A read returned a value that no relevant write wrote.
    UnwrittenValue {
        /// The offending read.
        read: u64,
    },
    /// A read returned a write that is overwritten: some other write falls
    /// strictly between the observed write and the read.
    StaleRead {
        /// The offending read.
        read: u64,
        /// The write whose value was returned.
        observed: u64,
        /// A write proving staleness (`observed ≺ proof ≺ read`).
        proof: u64,
    },
    /// A read returned `v₀` although some write completed before it.
    InitialAfterWrite {
        /// The offending read.
        read: u64,
        /// A write that completed before the read was invoked.
        proof: u64,
    },
    /// The per-read observations cannot be embedded in one write order
    /// (strong regularity's inter-read agreement fails).
    InconsistentWriteOrder {
        /// Write ids forming a dependency cycle.
        cycle: Vec<u64>,
    },
    /// Written values are not pairwise distinct; the strong checks cannot
    /// attribute reads to writes unambiguously.
    AmbiguousValues {
        /// A value written by more than one operation.
        writes: Vec<u64>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnwrittenValue { read } => {
                write!(f, "read {read} returned a value no relevant write wrote")
            }
            Violation::StaleRead {
                read,
                observed,
                proof,
            } => write!(
                f,
                "read {read} returned write {observed}, but write {proof} falls entirely between them"
            ),
            Violation::InitialAfterWrite { read, proof } => write!(
                f,
                "read {read} returned the initial value although write {proof} completed before it"
            ),
            Violation::InconsistentWriteOrder { cycle } => {
                write!(f, "no single write order satisfies all reads (cycle {cycle:?})")
            }
            Violation::AmbiguousValues { writes } => write!(
                f,
                "writes {writes:?} wrote identical values; strong checks need distinct values"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// For a completed read, the set of writes whose value it may legally
/// return under weak regularity, split out for reuse:
/// `candidates(rd) = {w | ¬(rd ≺ w) ∧ ∄w₂: w ≺ w₂ ≺ rd ∧ value matches}`,
/// plus `v₀` when no write completes before `rd`'s invocation.
fn weak_candidates<'h>(h: &'h History, rd: &HistoryOp) -> (bool, Vec<&'h HistoryOp>) {
    let value = rd.read_value.as_ref().expect("completed read has a value");
    let v0_allowed = value == h.initial() && !h.writes().any(|w| h.precedes(w, rd));
    let candidates = h
        .writes()
        .filter(|w| w.written_value() == Some(value))
        .filter(|w| !h.precedes(rd, w))
        .filter(|w| !h.writes().any(|w2| h.precedes(w, w2) && h.precedes(w2, rd)))
        .collect();
    (v0_allowed, candidates)
}

/// Diagnoses why a read has no weak-regularity candidate.
fn diagnose(h: &History, rd: &HistoryOp) -> Violation {
    let value = rd.read_value.as_ref().expect("completed read has a value");
    if value == h.initial() {
        if let Some(proof) = h.writes().find(|w| h.precedes(w, rd)) {
            return Violation::InitialAfterWrite {
                read: rd.id,
                proof: proof.id,
            };
        }
    }
    let matching: Vec<&HistoryOp> = h
        .writes()
        .filter(|w| w.written_value() == Some(value) && !h.precedes(rd, w))
        .collect();
    if matching.is_empty() {
        return Violation::UnwrittenValue { read: rd.id };
    }
    // Every matching write is overwritten; report the first proof found.
    for w in matching {
        if let Some(w2) = h
            .writes()
            .find(|w2| h.precedes(w, w2) && h.precedes(w2, rd))
        {
            return Violation::StaleRead {
                read: rd.id,
                observed: w.id,
                proof: w2.id,
            };
        }
    }
    Violation::UnwrittenValue { read: rd.id }
}

/// Checks weak regularity (MWRegWeak): for every completed read there is a
/// linearization of that read together with all writes.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_weak_regularity(h: &History) -> Result<(), Violation> {
    for rd in h.completed_reads() {
        let (v0_ok, candidates) = weak_candidates(h, rd);
        if !v0_ok && candidates.is_empty() {
            return Err(diagnose(h, rd));
        }
    }
    Ok(())
}

/// Node in the write-order constraint graph: the virtual initial write or
/// a real write id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Initial,
    Write(u64),
}

/// Checks strong regularity (MWRegWO): weak regularity plus agreement of
/// all reads on the order of shared relevant writes.
///
/// Decided by building the forced write-order constraint graph (real-time
/// edges plus, for each read returning write `w`, an edge `w' → w` for
/// every write `w'` preceding the read) and testing acyclicity.
///
/// # Errors
///
/// Returns a [`Violation`]; requires pairwise-distinct written values.
pub fn check_strong_regularity(h: &History) -> Result<(), Violation> {
    check_weak_regularity(h)?;
    ensure_distinct_values(h)?;

    let mut edges: HashMap<Node, HashSet<Node>> = HashMap::new();
    let mut add = |a: Node, b: Node| {
        if a != b {
            edges.entry(a).or_default().insert(b);
        }
    };
    // v₀ precedes every write.
    for w in h.writes() {
        add(Node::Initial, Node::Write(w.id));
    }
    // Real-time order among writes.
    let writes: Vec<&HistoryOp> = h.writes().collect();
    for w1 in &writes {
        for w2 in &writes {
            if h.precedes(w1, w2) {
                add(Node::Write(w1.id), Node::Write(w2.id));
            }
        }
    }
    // Read observations: the observed write is the last relevant one, so
    // every write preceding the read must order no later than it.
    for rd in h.completed_reads() {
        let value = rd.read_value.as_ref().expect("completed read has a value");
        let observed = if value == h.initial() {
            Node::Initial
        } else {
            match writes.iter().find(|w| w.written_value() == Some(value)) {
                Some(w) => Node::Write(w.id),
                None => return Err(Violation::UnwrittenValue { read: rd.id }),
            }
        };
        for w in &writes {
            if h.precedes(w, rd) {
                add(Node::Write(w.id), observed);
            }
        }
    }
    // Cycle check (iterative DFS with colors).
    if let Some(cycle) = find_cycle(&edges) {
        return Err(Violation::InconsistentWriteOrder {
            cycle: cycle
                .into_iter()
                .filter_map(|n| match n {
                    Node::Write(id) => Some(id),
                    Node::Initial => None,
                })
                .collect(),
        });
    }
    Ok(())
}

/// Checks strong safety: a write linearization exists into which every
/// read with no concurrent writes can be inserted.
///
/// Reads concurrent with any write are unconstrained; the remaining reads
/// behave as in strong regularity, so the same graph construction decides
/// the condition (restricted to those reads).
///
/// # Errors
///
/// Returns a [`Violation`]; requires pairwise-distinct written values.
pub fn check_strong_safety(h: &History) -> Result<(), Violation> {
    ensure_distinct_values(h)?;
    let quiet_reads: Vec<&HistoryOp> = h
        .completed_reads()
        .filter(|rd| !h.writes().any(|w| !h.precedes(w, rd) && !h.precedes(rd, w)))
        .collect();
    // Per-read value legality (same as weak regularity, but all candidate
    // writes precede the read since none are concurrent).
    for rd in &quiet_reads {
        let (v0_ok, candidates) = weak_candidates(h, rd);
        if !v0_ok && candidates.is_empty() {
            return Err(diagnose(h, rd));
        }
    }
    // Agreement across quiet reads: reuse the strong-regularity graph on
    // the sub-history containing only writes and quiet reads.
    let sub_ops: Vec<crate::history::HistoryOp> = h
        .ops()
        .iter()
        .filter(|o| o.is_write() || quiet_reads.iter().any(|r| r.id == o.id))
        .cloned()
        .collect();
    let sub = History::new(h.initial().clone(), sub_ops)
        .expect("sub-history of a valid history is valid");
    check_strong_regularity(&sub)
}

fn ensure_distinct_values(h: &History) -> Result<(), Violation> {
    let mut seen: HashMap<&Value, Vec<u64>> = HashMap::new();
    for w in h.writes() {
        let v = w.written_value().expect("writes carry values");
        seen.entry(v).or_default().push(w.id);
    }
    for (v, ids) in seen {
        if ids.len() > 1 || v == h.initial() {
            return Err(Violation::AmbiguousValues { writes: ids });
        }
    }
    Ok(())
}

fn find_cycle(edges: &HashMap<Node, HashSet<Node>>) -> Option<Vec<Node>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }

    fn dfs(
        node: Node,
        edges: &HashMap<Node, HashSet<Node>>,
        color: &mut HashMap<Node, Color>,
        path: &mut Vec<Node>,
    ) -> Option<Vec<Node>> {
        color.insert(node, Color::Gray);
        path.push(node);
        let mut succs: Vec<Node> = edges
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        succs.sort();
        for succ in succs {
            match color.get(&succ).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    let pos = path.iter().position(|&n| n == succ).unwrap_or(0);
                    return Some(path[pos..].to_vec());
                }
                Color::White => {
                    if let Some(cycle) = dfs(succ, edges, color, path) {
                        return Some(cycle);
                    }
                }
                Color::Black => {}
            }
        }
        path.pop();
        color.insert(node, Color::Black);
        None
    }

    let mut nodes: HashSet<Node> = edges.keys().copied().collect();
    for targets in edges.values() {
        nodes.extend(targets.iter().copied());
    }
    let mut sorted: Vec<Node> = nodes.into_iter().collect();
    sorted.sort();
    let mut color: HashMap<Node, Color> = HashMap::new();
    let mut path = Vec::new();
    for &start in &sorted {
        if color.get(&start).copied().unwrap_or(Color::White) == Color::White {
            if let Some(cycle) = dfs(start, edges, &mut color, &mut path) {
                return Some(cycle);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryOp, OpKind};

    fn write(id: u64, client: usize, seed: u64, inv: u64, ret: u64) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Write(Value::seeded(seed, 4)),
            invoked_at: inv,
            returned_at: Some(ret),
            read_value: None,
        }
    }

    fn read(id: u64, client: usize, seed: Option<u64>, inv: u64, ret: u64) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Read,
            invoked_at: inv,
            returned_at: Some(ret),
            read_value: Some(match seed {
                Some(s) => Value::seeded(s, 4),
                None => Value::zeroed(4),
            }),
        }
    }

    fn h(ops: Vec<HistoryOp>) -> History {
        History::new(Value::zeroed(4), ops).unwrap()
    }

    #[test]
    fn sequential_write_read_is_strongly_regular() {
        let hist = h(vec![write(0, 0, 1, 1, 2), read(1, 1, Some(1), 3, 4)]);
        check_weak_regularity(&hist).unwrap();
        check_strong_regularity(&hist).unwrap();
        check_strong_safety(&hist).unwrap();
    }

    #[test]
    fn stale_read_is_caught() {
        // w1 then w2 complete sequentially; a later read returns w1.
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            write(1, 0, 2, 3, 4),
            read(2, 1, Some(1), 5, 6),
        ]);
        let err = check_weak_regularity(&hist).unwrap_err();
        assert_eq!(
            err,
            Violation::StaleRead {
                read: 2,
                observed: 0,
                proof: 1
            }
        );
    }

    #[test]
    fn concurrent_write_may_be_read_early() {
        // Read overlaps the write: returning its value is legal.
        let hist = h(vec![write(0, 0, 1, 1, 10), read(1, 1, Some(1), 2, 3)]);
        check_weak_regularity(&hist).unwrap();
        check_strong_regularity(&hist).unwrap();
    }

    #[test]
    fn unwritten_value_is_caught() {
        let hist = h(vec![write(0, 0, 1, 1, 2), read(1, 1, Some(9), 3, 4)]);
        assert_eq!(
            check_weak_regularity(&hist).unwrap_err(),
            Violation::UnwrittenValue { read: 1 }
        );
    }

    #[test]
    fn initial_value_only_before_completed_writes() {
        // v0 read concurrent with an incomplete write: fine.
        let ok = h(vec![
            HistoryOp {
                id: 0,
                client: 0,
                kind: OpKind::Write(Value::seeded(1, 4)),
                invoked_at: 1,
                returned_at: None,
                read_value: None,
            },
            read(1, 1, None, 2, 3),
        ]);
        check_weak_regularity(&ok).unwrap();
        // v0 read after a completed write: violation.
        let bad = h(vec![write(0, 0, 1, 1, 2), read(1, 1, None, 3, 4)]);
        assert_eq!(
            check_weak_regularity(&bad).unwrap_err(),
            Violation::InitialAfterWrite { read: 1, proof: 0 }
        );
    }

    #[test]
    fn new_old_inversion_violates_strong_but_not_weak() {
        // Two concurrent writes w1, w2; two sequential reads observe them
        // in opposite orders. Weak regularity allows each read alone;
        // strong regularity (MWRegWO) forbids the disagreement.
        let hist = h(vec![
            write(0, 0, 1, 1, 10), // w1 concurrent with w2
            write(1, 1, 2, 2, 11),
            read(2, 2, Some(2), 12, 13), // sees w2 (so w1 ≤ w2... w1 before w2)
            read(3, 3, Some(1), 14, 15), // then sees w1 — inversion
        ]);
        check_weak_regularity(&hist).unwrap();
        let err = check_strong_regularity(&hist).unwrap_err();
        assert!(matches!(err, Violation::InconsistentWriteOrder { .. }));
    }

    #[test]
    fn safe_register_behaviour_passes_safety_not_regularity() {
        // A read concurrent with a write returns v0 after an earlier write
        // completed — violates regularity, allowed by safety.
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            HistoryOp {
                id: 1,
                client: 1,
                kind: OpKind::Write(Value::seeded(2, 4)),
                invoked_at: 5,
                returned_at: Some(20),
                read_value: None,
            },
            read(2, 2, None, 6, 7), // concurrent with write 1, returns v0
        ]);
        assert!(check_weak_regularity(&hist).is_err());
        check_strong_safety(&hist).unwrap();
    }

    #[test]
    fn quiet_read_constrained_under_safety() {
        // No concurrency at all; a stale read violates safety too.
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            write(1, 0, 2, 3, 4),
            read(2, 1, Some(1), 5, 6),
        ]);
        assert!(check_strong_safety(&hist).is_err());
    }

    #[test]
    fn duplicate_values_rejected_by_strong_checks() {
        let hist = h(vec![write(0, 0, 1, 1, 2), write(1, 1, 1, 3, 4)]);
        assert!(matches!(
            check_strong_regularity(&hist).unwrap_err(),
            Violation::AmbiguousValues { .. }
        ));
    }

    #[test]
    fn reads_agreeing_on_concurrent_writes_pass_strong() {
        let hist = h(vec![
            write(0, 0, 1, 1, 10),
            write(1, 1, 2, 2, 11),
            read(2, 2, Some(1), 12, 13),
            read(3, 3, Some(1), 14, 15), // same observation: consistent
        ]);
        check_strong_regularity(&hist).unwrap();
    }
}
