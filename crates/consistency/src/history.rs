//! Operation histories: the traces over which consistency is judged.

use rsb_coding::Value;
use serde::{Deserialize, Serialize};

/// What an operation did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A `write(v)`.
    Write(Value),
    /// A `read()`.
    Read,
}

/// One operation in a history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryOp {
    /// Unique operation id.
    pub id: u64,
    /// The invoking client.
    pub client: usize,
    /// Write or read.
    pub kind: OpKind,
    /// Invocation time (logical; must be unique per history).
    pub invoked_at: u64,
    /// Return time, if the operation completed.
    pub returned_at: Option<u64>,
    /// The value a completed read returned.
    pub read_value: Option<Value>,
}

impl HistoryOp {
    /// Whether the operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Write(_))
    }

    /// The written value, if a write.
    pub fn written_value(&self) -> Option<&Value> {
        match &self.kind {
            OpKind::Write(v) => Some(v),
            OpKind::Read => None,
        }
    }
}

/// Errors constructing a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// Two operations share an id.
    DuplicateId(u64),
    /// An operation returned before it was invoked.
    ReturnBeforeInvoke(u64),
    /// A completed read is missing its value, or a write carries one.
    MalformedResult(u64),
    /// One client has two operations outstanding at once (not well-formed).
    OverlappingClientOps {
        /// The client.
        client: usize,
        /// The two offending operation ids.
        ops: (u64, u64),
    },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::DuplicateId(id) => write!(f, "duplicate operation id {id}"),
            HistoryError::ReturnBeforeInvoke(id) => {
                write!(f, "operation {id} returned before its invocation")
            }
            HistoryError::MalformedResult(id) => {
                write!(f, "operation {id} has an inconsistent result field")
            }
            HistoryError::OverlappingClientOps { client, ops } => write!(
                f,
                "client {client} has overlapping operations {} and {}",
                ops.0, ops.1
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

/// A validated operation history with the register's initial value `v₀`.
///
/// ```
/// use rsb_consistency::{History, HistoryOp, OpKind};
/// use rsb_coding::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let v0 = Value::zeroed(4);
/// let v1 = Value::seeded(1, 4);
/// let ops = vec![
///     HistoryOp { id: 0, client: 0, kind: OpKind::Write(v1.clone()),
///                 invoked_at: 1, returned_at: Some(2), read_value: None },
///     HistoryOp { id: 1, client: 1, kind: OpKind::Read,
///                 invoked_at: 3, returned_at: Some(4), read_value: Some(v1) },
/// ];
/// let history = History::new(v0, ops)?;
/// rsb_consistency::check_weak_regularity(&history)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct History {
    initial: Value,
    ops: Vec<HistoryOp>,
}

impl History {
    /// Validates and wraps a history.
    ///
    /// # Errors
    ///
    /// Rejects duplicate ids, returns before invocations, result fields
    /// inconsistent with the operation kind, and overlapping operations by
    /// one client.
    pub fn new(initial: Value, ops: Vec<HistoryOp>) -> Result<Self, HistoryError> {
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            if !seen.insert(op.id) {
                return Err(HistoryError::DuplicateId(op.id));
            }
            if let Some(ret) = op.returned_at {
                if ret < op.invoked_at {
                    return Err(HistoryError::ReturnBeforeInvoke(op.id));
                }
            }
            // Malformed: a write carrying a read value, or a completed
            // read without one.
            match (&op.kind, &op.read_value, op.returned_at) {
                (OpKind::Write(_), Some(_), _) | (OpKind::Read, None, Some(_)) => {
                    return Err(HistoryError::MalformedResult(op.id))
                }
                _ => {}
            }
        }
        // Well-formedness: per client, operation intervals must not overlap.
        let mut by_client: std::collections::HashMap<usize, Vec<&HistoryOp>> =
            std::collections::HashMap::new();
        for op in &ops {
            by_client.entry(op.client).or_default().push(op);
        }
        for (client, mut client_ops) in by_client {
            client_ops.sort_by_key(|o| o.invoked_at);
            for pair in client_ops.windows(2) {
                let earlier_end = pair[0].returned_at;
                match earlier_end {
                    Some(end) if end < pair[1].invoked_at => {}
                    _ => {
                        return Err(HistoryError::OverlappingClientOps {
                            client,
                            ops: (pair[0].id, pair[1].id),
                        })
                    }
                }
            }
        }
        Ok(History { initial, ops })
    }

    /// Builds a history from `rsb-fpsm` simulation records.
    ///
    /// # Errors
    ///
    /// Same validation as [`History::new`] (simulator output always passes).
    pub fn from_fpsm(initial: Value, records: &[rsb_fpsm::OpRecord]) -> Result<Self, HistoryError> {
        let ops = records
            .iter()
            .map(|r| HistoryOp {
                id: r.op.0,
                client: r.client.0,
                kind: match &r.request {
                    rsb_fpsm::OpRequest::Write(v) => OpKind::Write(v.clone()),
                    rsb_fpsm::OpRequest::Read => OpKind::Read,
                },
                invoked_at: r.invoked_at,
                returned_at: r.returned_at,
                read_value: r.result.as_ref().and_then(|res| res.read_value().cloned()),
            })
            .collect();
        History::new(initial, ops)
    }

    /// The initial value `v₀`.
    pub fn initial(&self) -> &Value {
        &self.initial
    }

    /// All operations.
    pub fn ops(&self) -> &[HistoryOp] {
        &self.ops
    }

    /// The write operations.
    pub fn writes(&self) -> impl Iterator<Item = &HistoryOp> {
        self.ops.iter().filter(|o| o.is_write())
    }

    /// The completed read operations.
    pub fn completed_reads(&self) -> impl Iterator<Item = &HistoryOp> {
        self.ops.iter().filter(|o| !o.is_write() && o.is_complete())
    }

    /// Whether `a` precedes `b` (the paper's `a ≺ᵣ b`): `a` returned
    /// before `b` was invoked.
    pub fn precedes(&self, a: &HistoryOp, b: &HistoryOp) -> bool {
        matches!(a.returned_at, Some(ret) if ret < b.invoked_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(id: u64, client: usize, seed: u64, inv: u64, ret: Option<u64>) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Write(Value::seeded(seed, 4)),
            invoked_at: inv,
            returned_at: ret,
            read_value: None,
        }
    }

    #[test]
    fn validation_catches_malformed_histories() {
        let v0 = Value::zeroed(4);
        // Duplicate id.
        let err = History::new(
            v0.clone(),
            vec![write(0, 0, 1, 1, Some(2)), write(0, 1, 2, 3, Some(4))],
        )
        .unwrap_err();
        assert_eq!(err, HistoryError::DuplicateId(0));
        // Return before invoke.
        let err = History::new(v0.clone(), vec![write(0, 0, 1, 5, Some(2))]).unwrap_err();
        assert_eq!(err, HistoryError::ReturnBeforeInvoke(0));
        // Overlapping ops of one client.
        let err = History::new(
            v0.clone(),
            vec![write(0, 0, 1, 1, Some(10)), write(1, 0, 2, 5, Some(20))],
        )
        .unwrap_err();
        assert!(matches!(err, HistoryError::OverlappingClientOps { .. }));
        // Read without a value.
        let err = History::new(
            v0,
            vec![HistoryOp {
                id: 0,
                client: 0,
                kind: OpKind::Read,
                invoked_at: 1,
                returned_at: Some(2),
                read_value: None,
            }],
        )
        .unwrap_err();
        assert_eq!(err, HistoryError::MalformedResult(0));
    }

    #[test]
    fn precedence_is_strict_interval_order() {
        let v0 = Value::zeroed(4);
        let a = write(0, 0, 1, 1, Some(2));
        let b = write(1, 1, 2, 3, Some(4));
        let c = write(2, 2, 3, 2, Some(5)); // concurrent with both
        let h = History::new(v0, vec![a.clone(), b.clone(), c.clone()]).unwrap();
        assert!(h.precedes(&a, &b));
        assert!(!h.precedes(&b, &a));
        assert!(!h.precedes(&a, &c));
        assert!(!h.precedes(&c, &a));
    }

    #[test]
    fn incomplete_ops_are_allowed() {
        let v0 = Value::zeroed(4);
        let h = History::new(v0, vec![write(0, 0, 1, 1, None)]).unwrap();
        assert_eq!(h.writes().count(), 1);
        assert_eq!(h.completed_reads().count(), 0);
    }
}
