//! Operation histories and consistency/liveness checkers for register
//! emulations.
//!
//! The paper's correctness conditions (its Section 2 and Appendix A) are
//! made executable here:
//!
//! * [`check_weak_regularity`] — MWRegWeak, the condition under which the
//!   `Ω(min(f, c)·D)` lower bound is proved;
//! * [`check_strong_regularity`] — MWRegWO, the condition the Section-5
//!   algorithm guarantees;
//! * [`check_strong_safety`] — the weaker condition of the Appendix-E
//!   register (which escapes the lower bound);
//! * [`check_liveness`] — wait-freedom / FW-termination / lock-freedom
//!   assertions over quiescent fair runs;
//! * [`check_atomicity`] — linearizability, the strictly stronger
//!   condition the paper contrasts regularity against.
//!
//! Histories come from anywhere, but [`History::from_fpsm`] converts the
//! `rsb-fpsm` simulator's records directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomicity;
mod condition;
mod history;
mod liveness;
mod regularity;

pub use atomicity::check_atomicity;
pub use condition::{check, Condition};
pub use history::{History, HistoryError, HistoryOp, OpKind};
pub use liveness::{check_liveness, LivenessLevel, LivenessViolation};
pub use regularity::{
    check_strong_regularity, check_strong_safety, check_weak_regularity, Violation,
};
