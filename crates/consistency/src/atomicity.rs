//! Atomicity (linearizability) checking for register histories.
//!
//! The paper's safety condition is regularity, explicitly *weaker than
//! atomicity* (its Section 2); this module supplies the atomicity checker
//! so the gap is observable: ABD without reader write-back is strongly
//! regular yet admits new/old read inversions, which this checker
//! catches and which the write-back variant eliminates.
//!
//! For histories with pairwise-distinct written values the classical
//! characterization applies: the history is linearizable iff the forced
//! order — real-time write order, "no write completed before a read may
//! follow the read's observed write", and "reads ordered in real time
//! observe writes in a consistent order" — is acyclic.

use crate::history::{History, HistoryOp};
use crate::regularity::Violation;
use std::collections::{HashMap, HashSet};

/// Node of the constraint graph (mirrors the regularity checker's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Initial,
    Write(u64),
}

/// Checks atomicity (linearizability) of a register history.
///
/// Requires pairwise-distinct written values (all workloads in this
/// repository guarantee it); also implies the strong-regularity check.
///
/// # Errors
///
/// Returns a [`Violation`] naming the inconsistency.
pub fn check_atomicity(h: &History) -> Result<(), Violation> {
    // Atomicity implies strong regularity; run it first for its per-read
    // value legality diagnostics (unwritten value, stale read, v₀ rules).
    crate::regularity::check_strong_regularity(h)?;

    let writes: Vec<&HistoryOp> = h.writes().collect();
    let observed = |rd: &HistoryOp| -> Result<Node, Violation> {
        let value = rd.read_value.as_ref().expect("completed read has a value");
        if value == h.initial() {
            return Ok(Node::Initial);
        }
        writes
            .iter()
            .find(|w| w.written_value() == Some(value))
            .map(|w| Node::Write(w.id))
            .ok_or(Violation::UnwrittenValue { read: rd.id })
    };

    let mut edges: HashMap<Node, HashSet<Node>> = HashMap::new();
    let mut add = |a: Node, b: Node| {
        if a != b {
            edges.entry(a).or_default().insert(b);
        }
    };
    for w in &writes {
        add(Node::Initial, Node::Write(w.id));
    }
    for w1 in &writes {
        for w2 in &writes {
            if h.precedes(w1, w2) {
                add(Node::Write(w1.id), Node::Write(w2.id));
            }
        }
    }
    let reads: Vec<&HistoryOp> = h.completed_reads().collect();
    for rd in &reads {
        let obs = observed(rd)?;
        // Every write that completed before the read must not follow the
        // observed write.
        for w in &writes {
            if h.precedes(w, rd) {
                add(Node::Write(w.id), obs);
            }
        }
    }
    // Reads ordered in real time must observe writes consistently — the
    // extra constraint atomicity adds over strong regularity (banning
    // new/old inversions).
    for rd1 in &reads {
        for rd2 in &reads {
            if h.precedes(rd1, rd2) {
                add(observed(rd1)?, observed(rd2)?);
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        return Err(Violation::InconsistentWriteOrder {
            cycle: cycle
                .into_iter()
                .filter_map(|n| match n {
                    Node::Write(id) => Some(id),
                    Node::Initial => None,
                })
                .collect(),
        });
    }
    Ok(())
}

fn find_cycle(edges: &HashMap<Node, HashSet<Node>>) -> Option<Vec<Node>> {
    fn dfs(
        node: Node,
        edges: &HashMap<Node, HashSet<Node>>,
        state: &mut HashMap<Node, u8>, // 1 = gray, 2 = black
        path: &mut Vec<Node>,
    ) -> Option<Vec<Node>> {
        state.insert(node, 1);
        path.push(node);
        let mut succs: Vec<Node> = edges
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        succs.sort();
        for succ in succs {
            match state.get(&succ).copied().unwrap_or(0) {
                1 => {
                    let pos = path.iter().position(|&n| n == succ).unwrap_or(0);
                    return Some(path[pos..].to_vec());
                }
                0 => {
                    if let Some(c) = dfs(succ, edges, state, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        path.pop();
        state.insert(node, 2);
        None
    }

    let mut nodes: Vec<Node> = edges.keys().copied().collect();
    for t in edges.values() {
        nodes.extend(t.iter().copied());
    }
    nodes.sort();
    nodes.dedup();
    let mut state = HashMap::new();
    let mut path = Vec::new();
    for &n in &nodes {
        if state.get(&n).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(n, edges, &mut state, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryOp, OpKind};
    use rsb_coding::Value;

    fn write(id: u64, client: usize, seed: u64, inv: u64, ret: u64) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Write(Value::seeded(seed, 4)),
            invoked_at: inv,
            returned_at: Some(ret),
            read_value: None,
        }
    }

    fn read(id: u64, client: usize, seed: u64, inv: u64, ret: u64) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Read,
            invoked_at: inv,
            returned_at: Some(ret),
            read_value: Some(Value::seeded(seed, 4)),
        }
    }

    fn h(ops: Vec<HistoryOp>) -> History {
        History::new(Value::zeroed(4), ops).unwrap()
    }

    #[test]
    fn sequential_history_is_atomic() {
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            read(1, 1, 1, 3, 4),
            write(2, 0, 2, 5, 6),
            read(3, 1, 2, 7, 8),
        ]);
        check_atomicity(&hist).unwrap();
    }

    #[test]
    fn new_old_inversion_is_regular_but_not_atomic() {
        // w1 completed; w2 concurrent with both reads; rd1 sees w2, the
        // later rd2 sees w1 — legal under (strong) regularity, illegal
        // under atomicity.
        let hist = h(vec![
            write(0, 0, 1, 1, 2),   // w1
            write(1, 1, 2, 3, 100), // w2, still running
            read(2, 2, 2, 10, 11),  // sees w2
            read(3, 3, 1, 12, 13),  // then sees w1: inversion
        ]);
        crate::regularity::check_strong_regularity(&hist).unwrap();
        assert!(matches!(
            check_atomicity(&hist).unwrap_err(),
            Violation::InconsistentWriteOrder { .. }
        ));
    }

    #[test]
    fn concurrent_reads_may_disagree_until_ordered() {
        // Two CONCURRENT reads observing w2 then w1 are fine (no real-time
        // order between them).
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            write(1, 1, 2, 3, 100),
            read(2, 2, 2, 10, 20),
            read(3, 3, 1, 11, 21), // concurrent with read 2
        ]);
        check_atomicity(&hist).unwrap();
    }

    #[test]
    fn read_must_not_miss_completed_write() {
        let hist = h(vec![
            write(0, 0, 1, 1, 2),
            read(1, 1, 0 /* v0? no: seed 0 is not zeroed */, 3, 4),
        ]);
        // seed-0 value ≠ v0 and unwritten → violation via regularity.
        assert!(check_atomicity(&hist).is_err());
    }
}
