//! Liveness assertions over finished (fairly scheduled) runs.
//!
//! The paper's hierarchy (Appendix A): **wait-free** — every correct
//! client's operation completes; **FW-terminating** — writes are
//! wait-free, and reads complete if there are finitely many write
//! invocations; **lock-free** — some outstanding operation always
//! eventually completes. These are conditions on fair runs; the checkers
//! here take a history produced by driving a fair scheduler to quiescence
//! plus the set of crashed clients, and report which ops should have
//! completed but did not.

use crate::history::{History, HistoryOp};

/// The liveness level to check a quiescent fair run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessLevel {
    /// Every operation of a correct client must have completed.
    WaitFree,
    /// Every write of a correct client must have completed; reads must
    /// have completed because the history contains finitely many writes.
    FwTerminating,
    /// At least one operation must have completed if any was invoked.
    LockFree,
}

/// A liveness failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessViolation {
    /// An operation by a correct client never completed.
    Incomplete {
        /// The stuck operation.
        op: u64,
        /// Its client.
        client: usize,
    },
    /// Nothing completed although operations were invoked (lock-freedom).
    NoProgress,
}

impl std::fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LivenessViolation::Incomplete { op, client } => {
                write!(
                    f,
                    "operation {op} of correct client {client} never completed"
                )
            }
            LivenessViolation::NoProgress => write!(f, "no operation ever completed"),
        }
    }
}

impl std::error::Error for LivenessViolation {}

/// Checks a quiescent fair run's history against a liveness level.
///
/// `crashed_clients` lists clients that crashed during the run; their
/// incomplete operations are excused at every level.
///
/// # Errors
///
/// Returns the first [`LivenessViolation`] found.
pub fn check_liveness(
    h: &History,
    level: LivenessLevel,
    crashed_clients: &[usize],
) -> Result<(), LivenessViolation> {
    let correct = |op: &HistoryOp| !crashed_clients.contains(&op.client);
    match level {
        LivenessLevel::WaitFree => {
            for op in h.ops().iter().filter(|o| correct(o)) {
                if !op.is_complete() {
                    return Err(LivenessViolation::Incomplete {
                        op: op.id,
                        client: op.client,
                    });
                }
            }
            Ok(())
        }
        LivenessLevel::FwTerminating => {
            // Histories are finite by construction, so reads must have
            // completed too; the distinction from wait-free shows up in
            // *infinite* runs, which no finite check can witness.
            for op in h.ops().iter().filter(|o| correct(o)) {
                if !op.is_complete() {
                    return Err(LivenessViolation::Incomplete {
                        op: op.id,
                        client: op.client,
                    });
                }
            }
            Ok(())
        }
        LivenessLevel::LockFree => {
            let any_invoked = h.ops().iter().any(correct);
            let any_complete = h.ops().iter().any(|o| correct(o) && o.is_complete());
            if any_invoked && !any_complete {
                Err(LivenessViolation::NoProgress)
            } else {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryOp, OpKind};
    use rsb_coding::Value;

    fn op(id: u64, client: usize, complete: bool) -> HistoryOp {
        HistoryOp {
            id,
            client,
            kind: OpKind::Write(Value::seeded(id, 4)),
            invoked_at: 10 * id + 1,
            returned_at: complete.then_some(10 * id + 2),
            read_value: None,
        }
    }

    fn h(ops: Vec<HistoryOp>) -> History {
        History::new(Value::zeroed(4), ops).unwrap()
    }

    #[test]
    fn wait_free_requires_all_complete() {
        let hist = h(vec![op(0, 0, true), op(1, 1, false)]);
        assert!(check_liveness(&hist, LivenessLevel::WaitFree, &[]).is_err());
        // A crashed client is excused.
        check_liveness(&hist, LivenessLevel::WaitFree, &[1]).unwrap();
    }

    #[test]
    fn lock_free_needs_some_progress() {
        let none = h(vec![op(0, 0, false), op(1, 1, false)]);
        assert_eq!(
            check_liveness(&none, LivenessLevel::LockFree, &[]).unwrap_err(),
            LivenessViolation::NoProgress
        );
        let some = h(vec![op(0, 0, true), op(1, 1, false)]);
        check_liveness(&some, LivenessLevel::LockFree, &[]).unwrap();
        let empty = h(vec![]);
        check_liveness(&empty, LivenessLevel::LockFree, &[]).unwrap();
    }

    #[test]
    fn fw_terminating_on_finite_histories() {
        let hist = h(vec![op(0, 0, true)]);
        check_liveness(&hist, LivenessLevel::FwTerminating, &[]).unwrap();
        let stuck = h(vec![op(0, 0, false)]);
        assert!(check_liveness(&stuck, LivenessLevel::FwTerminating, &[]).is_err());
    }
}
