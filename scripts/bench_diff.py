#!/usr/bin/env python3
"""Diff two criterion JSON-lines bench reports and gate on regressions.

Usage: bench_diff.py PARENT.json CURRENT.json [--threshold 0.30]

Each input is the JSON-lines file the vendored criterion stub appends to
$CRITERION_JSON: one object per benchmark with "name" and "ns_per_iter"
(best observed iteration time). The gate fails (exit 1) when any
benchmark present in both files regressed by more than the threshold
(current > parent * (1 + threshold)). Benchmarks present on only one
side are reported but never fail the gate (they are new or removed, not
regressed).

Exit codes: 0 ok / nothing comparable, 1 regression found, 2 usage.
"""

import argparse
import json
import math
import sys


def load(path):
    """Parse a JSON-lines bench report into {name: best ns_per_iter}."""
    results = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    print(f"bench-diff: skipping malformed line in {path}: {line[:80]}")
                    continue
                name, ns = obj.get("name"), obj.get("ns_per_iter")
                if not isinstance(name, str) or not isinstance(ns, (int, float)):
                    continue
                # A name can legitimately repeat across reruns; keep the best.
                results[name] = min(ns, results.get(name, float("inf")))
    except OSError as e:
        print(f"bench-diff: cannot read {path}: {e}")
        return None
    return results


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("parent")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="allowed relative slowdown before failing (default 0.30)")
    args = ap.parse_args()

    parent = load(args.parent)
    current = load(args.current)
    # A missing parent is expected (expired artifact, first gated run) —
    # skip. A missing/empty CURRENT file means the bench pipeline that
    # just ran in this same workflow produced nothing: that's a broken
    # gate, not a pass.
    if current is None or not current:
        print("bench-diff: current results missing or empty — the bench "
              "pipeline is broken (refusing to pass an empty gate)")
        return 1
    if parent is None or not parent:
        print("bench-diff: no parent results; nothing to gate against (ok)")
        return 0

    shared = sorted(set(parent) & set(current))
    regressions = []
    skipped = []
    width = max((len(n) for n in set(parent) | set(current)), default=4)
    print(f"{'benchmark':<{width}}  {'parent_ns':>12}  {'current_ns':>12}  {'ratio':>7}")
    for name in shared:
        old, new = parent[name], current[name]
        if old <= 0 or not math.isfinite(old):
            # A zero/negative/non-finite parent sample is a broken parent
            # measurement, not an infinite regression in this change: report
            # it and skip the comparison rather than hard-failing the gate.
            print(f"{name:<{width}}  {old:>12}  {new:>12.1f}  "
                  f"skipped (unusable parent sample)")
            skipped.append(name)
            continue
        ratio = new / old
        flag = "  << REGRESSION" if ratio > 1.0 + args.threshold else ""
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  {ratio:>6.2f}x{flag}")
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
    if skipped:
        print(f"bench-diff: skipped {len(skipped)} benchmark(s) with "
              f"non-positive parent samples (reported above, never gated)")
    for name in sorted(set(current) - set(parent)):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>12.1f}")
    for name in sorted(set(parent) - set(current)):
        print(f"{name:<{width}}  {parent[name]:>12.1f}  {'(removed)':>12}")

    if regressions:
        print(f"\nbench-diff: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    compared = len(shared) - len(skipped)
    print(f"\nbench-diff: ok — {compared} benchmark(s) within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
