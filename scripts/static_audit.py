#!/usr/bin/env python3
"""Repo lint: structural rules the compiler can't enforce per-crate.

Three checks, all hard failures:

1. `unsafe` appears only in the one audited file that is allowed to use
   it (the GF(256) SIMD kernels). Everything else is `forbid(unsafe_code)`
   territory -- a new unsafe block anywhere else must come with an edit
   to this script, i.e. a reviewable decision.

2. The wire-decode paths in `crates/store/src/net/frame.rs` stay total:
   no `.unwrap()`, no `.expect(`, no direct indexing/slicing (use `.get()`
   and surface `decode_err`). Untrusted bytes must never reach a panic.

3. Every crate keeps its lint header: `#![forbid(unsafe_code)]`
   (`#![deny(unsafe_code)]` for the SIMD crate, which opts back in for
   one module) and `#![warn(missing_docs)]` in `src/lib.rs`.

Usage: python3 scripts/static_audit.py  (from the repo root; exits 1 on
any finding).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CRATES = REPO / "crates"

# The only file allowed to contain unsafe code.
UNSAFE_ALLOWED = CRATES / "coding" / "src" / "gf256" / "simd.rs"
# The file whose decode paths must be total.
DECODE_FILE = CRATES / "store" / "src" / "net" / "frame.rs"
# Crates allowed to use deny(unsafe_code) instead of forbid.
DENY_OK = {"coding"}

UNSAFE_RE = re.compile(r"\bunsafe\b")
# Lines where the token `unsafe` is lint plumbing, not code.
UNSAFE_LINT_RE = re.compile(r"unsafe_code|unsafe_op_in_unsafe_fn")
PANIC_RE = re.compile(r"\.unwrap\(\)|\.expect\(")
# An index/slice expression: `[` directly after an identifier char, `)`,
# `]`, or `?`. Array literals/types (`[u8; 4]`, `&[u8]`) don't match.
INDEX_RE = re.compile(r"[\w)\]?]\[")


def strip_comments(line: str) -> str:
    """Drop `//` comments (good enough: no block comments in hot paths)."""
    return line.split("//", 1)[0]


def check_unsafe_confinement(findings: list[str]) -> None:
    for path in sorted(CRATES.rglob("*.rs")):
        if path == UNSAFE_ALLOWED or "target" in path.parts:
            continue
        for i, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments(raw)
            if UNSAFE_RE.search(line) and not UNSAFE_LINT_RE.search(line):
                rel = path.relative_to(REPO)
                findings.append(
                    f"{rel}:{i}: `unsafe` outside the audited SIMD module: {raw.strip()}"
                )


def check_decode_totality(findings: list[str]) -> None:
    rel = DECODE_FILE.relative_to(REPO)
    for i, raw in enumerate(DECODE_FILE.read_text().splitlines(), 1):
        line = strip_comments(raw)
        if PANIC_RE.search(line):
            findings.append(f"{rel}:{i}: panic path in wire decode: {raw.strip()}")
        if INDEX_RE.search(line):
            findings.append(
                f"{rel}:{i}: direct indexing in wire decode (use .get()): {raw.strip()}"
            )


def check_lint_headers(findings: list[str]) -> None:
    for lib in sorted(CRATES.glob("*/src/lib.rs")):
        crate = lib.parent.parent.name
        text = lib.read_text()
        wanted = "#![deny(unsafe_code)]" if crate in DENY_OK else "#![forbid(unsafe_code)]"
        if wanted not in text:
            findings.append(f"crates/{crate}: lib.rs dropped `{wanted}`")
        if "#![warn(missing_docs)]" not in text:
            findings.append(f"crates/{crate}: lib.rs dropped `#![warn(missing_docs)]`")


def main() -> int:
    findings: list[str] = []
    check_unsafe_confinement(findings)
    check_decode_totality(findings)
    check_lint_headers(findings)
    if findings:
        print(f"static audit: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    n_crates = len(list(CRATES.glob("*/src/lib.rs")))
    print(f"static audit clean: {n_crates} crates, unsafe confined to "
          f"{UNSAFE_ALLOWED.relative_to(REPO)}, decode paths total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
