//! Soundness of the regularity checker against a brute-force oracle: on
//! tiny random histories, the MWRegWeak verdict must match an explicit
//! enumeration of all linearizations of {writes} ∪ {read}.

use proptest::prelude::*;
use rsb_coding::Value;
use rsb_consistency::{check_weak_regularity, History, HistoryOp, OpKind};

/// Brute force: does a linearization of all writes plus this read exist?
fn brute_force_read_ok(h: &History, rd: &HistoryOp) -> bool {
    let writes: Vec<&HistoryOp> = h.writes().collect();
    let k = writes.len();
    let mut perm: Vec<usize> = (0..k).collect();
    // Heap's algorithm over write orders; read inserted at every slot.
    fn respects_rt(h: &History, order: &[&HistoryOp]) -> bool {
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                if h.precedes(order[j], order[i]) {
                    return false;
                }
            }
        }
        true
    }
    let value = rd.read_value.as_ref().expect("completed read");
    let mut stack = vec![0usize; k];
    let mut i = 0;
    loop {
        let order: Vec<&HistoryOp> = perm.iter().map(|&p| writes[p]).collect();
        if respects_rt(h, &order) {
            // Try the read at every position: after slot s (s = 0 → before
            // all writes, returning v₀).
            for s in 0..=k {
                let expected = if s == 0 {
                    h.initial()
                } else {
                    order[s - 1].written_value().expect("write")
                };
                if expected != value {
                    continue;
                }
                // Real-time: the read must not precede anything placed
                // before it, nor follow anything placed after it.
                let ok_before = order[..s].iter().all(|w| !h.precedes(rd, w));
                let ok_after = order[s..].iter().all(|w| !h.precedes(w, rd));
                if ok_before && ok_after {
                    return true;
                }
            }
        }
        // Next permutation (Heap's algorithm, iterative).
        if k == 0 {
            return false;
        }
        loop {
            if i >= k {
                return false;
            }
            if stack[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(stack[i], i);
                }
                stack[i] += 1;
                i = 0;
                break;
            }
            stack[i] = 0;
            i += 1;
        }
    }
}

fn arbitrary_history(
    write_spans: &[(u8, u8)],
    read_span: (u8, u8),
    read_seed: u8,
) -> Option<(History, HistoryOp)> {
    let mut ops = Vec::new();
    let t = |x: u8| x as u64;
    for (i, (a, b)) in write_spans.iter().enumerate() {
        let (inv, ret) = (t(*a % 16) * 2 + 1, t(*a % 16) * 2 + 1 + t(*b % 8) * 2 + 1);
        ops.push(HistoryOp {
            id: i as u64,
            client: i, // distinct clients: always well-formed
            kind: OpKind::Write(Value::seeded(i as u64 + 1, 4)),
            invoked_at: inv,
            returned_at: Some(ret),
            read_value: None,
        });
    }
    let (a, b) = read_span;
    let rd = HistoryOp {
        id: 100,
        client: 90,
        kind: OpKind::Read,
        invoked_at: t(a % 16) * 2 + 2,
        returned_at: Some(t(a % 16) * 2 + 2 + t(b % 8) * 2 + 2),
        read_value: Some(
            if (read_seed as usize).is_multiple_of(write_spans.len() + 1) {
                Value::zeroed(4)
            } else {
                Value::seeded((read_seed as usize % (write_spans.len() + 1)) as u64, 4)
            },
        ),
    };
    let mut all = ops.clone();
    all.push(rd.clone());
    History::new(Value::zeroed(4), all).ok().map(|h| (h, rd))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The checker agrees with brute-force enumeration on 1–4 writes plus
    /// one read.
    #[test]
    fn weak_regularity_matches_brute_force(
        spans in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..5),
        read_span in (any::<u8>(), any::<u8>()),
        read_seed in any::<u8>(),
    ) {
        if let Some((h, rd)) = arbitrary_history(&spans, read_span, read_seed) {
            let checker = check_weak_regularity(&h).is_ok();
            let brute = brute_force_read_ok(&h, &rd);
            prop_assert_eq!(checker, brute, "history: {:?}", h);
        }
    }
}
