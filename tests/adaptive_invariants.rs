//! Schedule-exploration tests of the adaptive algorithm's central
//! invariants along random interleavings:
//!
//! * **Invariant 1** (availability): at every point, for every set `S` of
//!   `n − f` base objects, some timestamp `ts' ≥ max{storedTS(bo) | bo ∈ S}`
//!   has at least `k` distinct pieces within `S` — the reason reads can
//!   always reconstruct the latest-or-newer value;
//! * **Theorem 2** (capacity): base-object storage never exceeds the
//!   adaptive bound at any point in any schedule.

use proptest::prelude::*;
use reliable_storage::experiments::theorem2_bound_bits;
use rsb_coding::Value;
use rsb_fpsm::{OpRequest, RandomScheduler, Scheduler, Simulation};
use rsb_registers::adaptive::{AdaptiveClient, AdaptiveObject};
use rsb_registers::{Adaptive, RegisterConfig, RegisterProtocol, Timestamp};

/// All (n−f)-subsets of `0..n` (n small in these tests).
fn quorums(n: usize, q: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut subset: Vec<usize> = Vec::new();
    fn rec(start: usize, n: usize, q: usize, subset: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if subset.len() == q {
            out.push(subset.clone());
            return;
        }
        for i in start..n {
            subset.push(i);
            rec(i + 1, n, q, subset, out);
            subset.pop();
        }
    }
    rec(0, n, q, &mut subset, &mut out);
    out
}

fn check_invariant1(
    sim: &Simulation<AdaptiveObject, AdaptiveClient>,
    cfg: &RegisterConfig,
) -> Result<(), String> {
    for quorum in quorums(cfg.n, cfg.quorum()) {
        let mut max_stored = Timestamp::ZERO;
        let mut pieces: std::collections::HashMap<Timestamp, std::collections::HashSet<u32>> =
            std::collections::HashMap::default();
        for &i in &quorum {
            let st = sim.object_state(rsb_fpsm::ObjectId(i));
            max_stored = max_stored.max(st.stored_ts());
            for c in st.vp().iter().chain(st.vf().iter()) {
                pieces
                    .entry(c.ts)
                    .or_default()
                    .insert(c.piece.block.index());
            }
        }
        let ok = pieces
            .iter()
            .any(|(ts, idxs)| *ts >= max_stored && idxs.len() >= cfg.k);
        if !ok {
            return Err(format!(
                "quorum {quorum:?}: no ts ≥ {max_stored} with {} distinct pieces",
                cfg.k
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1 and the Theorem-2 capacity bound hold at EVERY step of
    /// random schedules with concurrent writers.
    #[test]
    fn availability_and_capacity_along_schedules(
        seed in any::<u64>(),
        writers in 1usize..5,
    ) {
        let cfg = RegisterConfig::paper(1, 2, 16).unwrap(); // n = 4, q = 3
        let proto = Adaptive::new(cfg);
        let mut sim = proto.new_sim();
        for i in 0..writers {
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, 16))).unwrap();
        }
        let mut sched = RandomScheduler::new(seed);
        let bound = theorem2_bound_bits(&cfg, writers);
        for _ in 0..3_000 {
            check_invariant1(&sim, &cfg).map_err(TestCaseError::fail)?;
            let object_bits = sim.storage_cost().object_bits;
            prop_assert!(
                object_bits <= bound,
                "object storage {object_bits} exceeded Theorem-2 bound {bound}"
            );
            match Scheduler::<_, _>::next_event(&mut sched, &sim) {
                Some(ev) => sim.step(ev).unwrap(),
                None => break,
            }
        }
    }

    /// Timestamp watermarks are monotone per object along any schedule.
    #[test]
    fn stored_ts_is_monotone(seed in any::<u64>()) {
        let cfg = RegisterConfig::paper(1, 2, 16).unwrap();
        let proto = Adaptive::new(cfg);
        let mut sim = proto.new_sim();
        for i in 0..3 {
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, 16))).unwrap();
        }
        let mut sched = RandomScheduler::new(seed);
        let mut last: Vec<Timestamp> = (0..cfg.n)
            .map(|i| sim.object_state(rsb_fpsm::ObjectId(i)).stored_ts())
            .collect();
        for _ in 0..2_000 {
            match Scheduler::<_, _>::next_event(&mut sched, &sim) {
                Some(ev) => sim.step(ev).unwrap(),
                None => break,
            }
            for (i, prev) in last.iter_mut().enumerate() {
                let now = sim.object_state(rsb_fpsm::ObjectId(i)).stored_ts();
                prop_assert!(now >= *prev, "storedTS went backwards on bo{i}");
                *prev = now;
            }
        }
    }
}

#[test]
fn invariant1_also_holds_with_straggling_updates() {
    // Sequential writes but a scheduler that leaves stragglers: after each
    // completed write, the invariant must hold even before drain.
    let cfg = RegisterConfig::paper(2, 2, 32).unwrap(); // n = 6
    let proto = Adaptive::new(cfg);
    let mut sim = proto.new_sim();
    let w = proto.add_client(&mut sim);
    for round in 0..4u64 {
        sim.invoke(w, OpRequest::Write(Value::seeded(round + 1, 32)))
            .unwrap();
        // Drive with a biased scheduler: always the *newest* enabled event,
        // maximizing stragglers.
        for _ in 0..100_000 {
            if sim.history().iter().all(rsb_fpsm::OpRecord::is_complete) {
                break;
            }
            let evs = sim.enabled_events();
            let ev = *evs.last().expect("something enabled while op pending");
            sim.step(ev).unwrap();
            check_invariant1(&sim, &cfg).unwrap();
        }
    }
}
