//! Facade smoke tests for the sharded store: the whole async + blocking
//! surface reached through `reliable_storage::prelude`, so the root
//! package's `cargo test` exercises the service end to end.

use reliable_storage::prelude::*;

#[test]
fn async_surface_through_the_facade() {
    let reg = RegisterConfig::paper(1, 2, 32).unwrap();
    let store = Store::start(StoreConfig::uniform(4, ProtocolSpec::Adaptive, reg)).unwrap();
    let client = store.client();

    block_on(client.write("facade", Value::seeded(1, 32))).unwrap();
    assert_eq!(
        block_on(client.read("facade")).unwrap(),
        Value::seeded(1, 32)
    );

    let writes: Vec<_> = (0..8u64)
        .map(|i| client.write(&format!("batch-{i}"), Value::seeded(i + 2, 32)))
        .collect();
    for out in join_all(writes) {
        out.unwrap();
    }
    assert_eq!(store.metrics().totals().writes_completed, 9);
    store.shutdown();
}

#[test]
fn keyed_workload_against_every_protocol() {
    for proto in ProtocolSpec::ALL {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        let store = Store::start(StoreConfig::uniform(2, proto, reg)).unwrap();
        let client = store.client();
        let scenario = KeyedScenario::uniform(2, 10, 8, 0.5, 16, 11);
        for c in 0..scenario.clients {
            for op in scenario.client_ops(c) {
                match op.action {
                    KeyedAction::Read => {
                        client.read_blocking(&op.key).unwrap();
                    }
                    KeyedAction::Write(v) => {
                        client.write_blocking(&op.key, v).unwrap();
                    }
                }
            }
        }
        let totals = store.metrics().totals();
        assert_eq!(totals.completed(), 20, "protocol {proto}");
        store.shutdown();
    }
}

#[test]
fn recorded_multi_key_history_passes_the_checkers() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(3, ProtocolSpec::Abd, reg)).unwrap();
    let client = store.client();
    for i in 0..12u64 {
        let key = format!("k{}", i % 4);
        client
            .write_blocking(&key, Value::seeded(i + 1, 16))
            .unwrap();
        client.read_blocking(&key).unwrap();
    }
    for key in store.keys() {
        let h = store.key_history(&key).unwrap();
        let history = History::from_fpsm(h.initial, &h.records).unwrap();
        check_strong_regularity(&history).unwrap();
    }
    store.shutdown();
}

#[test]
fn shutdown_errors_surface_through_the_facade() {
    let reg = RegisterConfig::paper(1, 2, 16).unwrap();
    let store = Store::start(StoreConfig::uniform(2, ProtocolSpec::Safe, reg)).unwrap();
    let client = store.client();
    store.shutdown();
    assert!(matches!(
        client.read_blocking("gone"),
        Err(StoreError::ShutDown)
    ));
}
