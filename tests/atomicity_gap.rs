//! The regularity/atomicity gap, made executable: the paper (Section 2)
//! emphasizes that its safety condition — regularity — is weaker than
//! atomicity. Plain ABD without reader write-back is strongly regular
//! but admits a new/old read inversion; the write-back variant
//! (`AbdAtomic`) eliminates it. Both facts are machine-checked here on
//! the classic inversion schedule.

use reliable_storage::prelude::*;
use rsb_consistency::{check_atomicity, check_strong_regularity, History};
use rsb_fpsm::{ClientLogic, ObjectState, OpId};
use rsb_fpsm::{RmwId, SimEvent, Simulation};
use rsb_registers::abd::AbdObject;

/// Applies and delivers every in-flight RMW of `op` targeting `obj`.
fn land_on<S, L>(sim: &mut Simulation<S, L>, op: OpId, obj: ObjectId)
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    let ids: Vec<RmwId> = sim
        .inflight_rmws()
        .iter()
        .filter(|i| i.op == op && i.object == obj && !i.applied)
        .map(|i| i.rmw)
        .collect();
    for id in ids {
        sim.step(SimEvent::Apply(id)).unwrap();
        sim.step(SimEvent::Deliver(id)).unwrap();
    }
}

/// Drives the inversion schedule against any protocol sharing ABD's
/// object/RMW shape. Returns the history.
fn inversion_schedule<P>(proto: &P) -> History
where
    P: RegisterProtocol<Object = AbdObject>,
{
    let mut sim = proto.new_sim();
    let w1 = proto.add_client(&mut sim);
    let w2 = proto.add_client(&mut sim);
    let r1 = proto.add_client(&mut sim);
    let r2 = proto.add_client(&mut sim);

    // w1 writes v1 everywhere.
    sim.invoke(w1, OpRequest::Write(Value::seeded(1, 16)))
        .unwrap();
    assert!(run_to_completion(&mut sim, 10_000));
    let mut fair = FairScheduler::new();
    run(&mut sim, &mut fair, 10_000);

    // w2 starts writing v2: land its read-ts round on the quorum
    // {bo0, bo1} — this triggers the Store round — then let the store
    // land ONLY on bo0. (bo2's ReadTs stays pending; applying it later
    // would be a stale no-op.)
    let w2_op = sim
        .invoke(w2, OpRequest::Write(Value::seeded(2, 16)))
        .unwrap();
    land_on(&mut sim, w2_op, ObjectId(0));
    land_on(&mut sim, w2_op, ObjectId(1));
    land_on(&mut sim, w2_op, ObjectId(0)); // Store lands on bo0 only

    // r1 reads via {bo0, bo1}: observes v2.
    let r1_op = sim.invoke(r1, OpRequest::Read).unwrap();
    land_on(&mut sim, r1_op, ObjectId(0));
    land_on(&mut sim, r1_op, ObjectId(1));
    // For the atomic variant this spawns a write-back round; land it on a
    // full quorum so the read can return.
    for i in 0..3 {
        land_on(&mut sim, r1_op, ObjectId(i));
    }
    assert!(
        sim.op_record(r1_op).is_complete(),
        "r1 should have returned"
    );

    // r2 reads via {bo1, bo2}.
    let r2_op = sim.invoke(r2, OpRequest::Read).unwrap();
    land_on(&mut sim, r2_op, ObjectId(1));
    land_on(&mut sim, r2_op, ObjectId(2));
    // Land the atomic variant's write-back round on a full quorum.
    for i in 0..3 {
        land_on(&mut sim, r2_op, ObjectId(i));
    }
    assert!(
        sim.op_record(r2_op).is_complete(),
        "r2 should have returned"
    );

    History::from_fpsm(proto.config().initial_value(), sim.history()).unwrap()
}

#[test]
fn plain_abd_shows_new_old_inversion() {
    let cfg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let history = inversion_schedule(&Abd::new(cfg));
    // r1 saw the in-flight v2, r2 then saw the old v1.
    let reads: Vec<_> = history.completed_reads().collect();
    assert_eq!(reads.len(), 2);
    assert_eq!(reads[0].read_value, Some(Value::seeded(2, 16)));
    assert_eq!(reads[1].read_value, Some(Value::seeded(1, 16)));
    // Regular — the paper's condition — but NOT atomic.
    check_strong_regularity(&history).unwrap();
    assert!(check_atomicity(&history).is_err());
}

#[test]
fn write_back_restores_atomicity() {
    let cfg = RegisterConfig::new(3, 1, 1, 16).unwrap();
    let history = inversion_schedule(&rsb_registers::AbdAtomic::new(cfg));
    // r1's write-back propagated v2, so r2 sees it too.
    let reads: Vec<_> = history.completed_reads().collect();
    assert_eq!(reads[0].read_value, Some(Value::seeded(2, 16)));
    assert_eq!(reads[1].read_value, Some(Value::seeded(2, 16)));
    check_atomicity(&history).unwrap();
}

#[test]
fn atomic_abd_passes_atomicity_on_random_scenarios() {
    let cfg = RegisterConfig::new(5, 2, 1, 32).unwrap();
    let proto = rsb_registers::AbdAtomic::new(cfg);
    for seed in 0..6u64 {
        let out = run_scenario(&proto, &Scenario::mixed(3, 3, 2, 900 + seed));
        assert!(out.completed, "seed {seed}");
        let history =
            History::from_fpsm(proto.config().initial_value(), out.sim.history()).unwrap();
        check_atomicity(&history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn atomic_abd_survives_failures() {
    let cfg = RegisterConfig::new(5, 2, 1, 32).unwrap();
    let proto = rsb_registers::AbdAtomic::new(cfg);
    let mut scenario = Scenario::mixed(2, 2, 2, 950);
    scenario.failures = FailurePlan {
        object_crashes: vec![(25, ObjectId(0)), (60, ObjectId(4))],
        client_crashes: vec![],
    };
    let out = run_scenario(&proto, &scenario);
    assert!(out.completed);
    let history = History::from_fpsm(proto.config().initial_value(), out.sim.history()).unwrap();
    check_atomicity(&history).unwrap();
}
