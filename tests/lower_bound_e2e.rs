//! End-to-end lower-bound sweeps: the Theorem-1 dichotomy certifies for a
//! grid of protocols and parameters, and the Θ(min(f,c)·D) shape emerges
//! from measured storage.

use reliable_storage::prelude::*;

#[test]
fn dichotomy_certifies_across_grid() {
    for f in [1usize, 2] {
        for c in [1usize, 2, 4, 6] {
            let d_bytes = 64;
            let abd = Abd::new(RegisterConfig::new(2 * f + 1, f, 1, d_bytes).unwrap());
            let coded = Coded::new(RegisterConfig::paper(f, 4, d_bytes).unwrap());
            let adaptive = Adaptive::new(RegisterConfig::paper(f, 2, d_bytes).unwrap());
            for report in [
                experiments::adversary_blowup(
                    &abd,
                    c,
                    AdversaryParams::theorem1(8 * d_bytes as u64, f, c),
                    2_000_000,
                ),
                experiments::adversary_blowup(
                    &coded,
                    c,
                    AdversaryParams::theorem1(8 * d_bytes as u64, f, c),
                    2_000_000,
                ),
                experiments::adversary_blowup(
                    &adaptive,
                    c,
                    AdversaryParams::theorem1(8 * d_bytes as u64, f, c),
                    2_000_000,
                ),
            ] {
                assert!(report.certifies_bound(), "f={f} c={c}: {report:?}");
            }
        }
    }
}

#[test]
fn coded_storage_grows_with_c_and_abd_does_not() {
    let f = 3;
    let abd = Abd::new(RegisterConfig::new(2 * f + 1, f, 1, 64).unwrap());
    let coded = Coded::new(RegisterConfig::paper(f, f, 64).unwrap());
    let abd_rows = experiments::storage_sweep(&abd, &[1, 4, 8], 2, 50);
    let coded_rows = experiments::storage_sweep(&coded, &[1, 4, 8], 2, 60);
    // ABD flat.
    assert_eq!(abd_rows[0].peak_object_bits, abd_rows[2].peak_object_bits);
    // Coded at c = 8 strictly above c = 1 (the concurrency cost).
    assert!(
        coded_rows[2].peak_object_bits > coded_rows[0].peak_object_bits,
        "{coded_rows:?}"
    );
}

#[test]
fn adaptive_tracks_the_min_side() {
    // For large c the adaptive peak must stay below pure coding's peak
    // (it flattens at 2nD instead of growing with c).
    let f = 4;
    let coded = Coded::new(RegisterConfig::paper(f, f, 64).unwrap());
    let adaptive = Adaptive::new(RegisterConfig::paper(f, f, 64).unwrap());
    let c = 24;
    let coded_peak = experiments::measure_storage(&coded, c, 2, 70).peak_object_bits;
    let adaptive_peak = experiments::measure_storage(&adaptive, c, 2, 80).peak_object_bits;
    assert!(
        adaptive_peak < coded_peak,
        "adaptive {adaptive_peak} should beat coded {coded_peak} at c = {c}"
    );
}

#[test]
// The expectation spells out both arms of the theorem's min even though the
// winner is statically known; keep the formula legible.
#[allow(clippy::unnecessary_min_or_max)]
fn guaranteed_bits_formula_matches_theorem1() {
    // min((f+1)·D/2, c·(D/2+1)) with ℓ = D/2.
    let params = AdversaryParams::theorem1(1024, 3, 2);
    assert_eq!(params.guaranteed_bits(), (4 * 512).min(2 * (512 + 1)));
    let params = AdversaryParams::theorem1(1024, 1, 50);
    assert_eq!(params.guaranteed_bits(), 2 * 512);
}

#[test]
fn substitution_holds_under_adversarial_schedule_too() {
    // Definition 5 quantifies over ALL runs; check it along an
    // adversary-driven run, not just random ones.
    use rsb_fpsm::Scheduler;
    let cfg = RegisterConfig::paper(1, 2, 32).unwrap();
    let proto = Coded::new(cfg);
    let values: Vec<Value> = (1..=3).map(|s| Value::seeded(s, 32)).collect();

    let build = |vals: &[Value]| {
        let mut sim = proto.new_sim();
        for v in vals {
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        }
        sim
    };
    let mut substituted = values.clone();
    substituted[2] = Value::seeded(77, 32);

    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, 3);
    let mut sim_a = build(&values);
    let mut sim_b = build(&substituted);
    let mut ad = AdversaryAd::new(params);
    // Drive run A with Ad; replay the identical event sequence on run B.
    for _ in 0..100_000 {
        match Scheduler::<_, _>::next_event(&mut ad, &sim_a) {
            Some(ev) => {
                sim_a.step(ev).unwrap();
                sim_b.step(ev).expect("black-box runs stay in lockstep");
            }
            None => break,
        }
    }
    // Identical structure: same per-component sources/sizes.
    let structure = |sim: &rsb_fpsm::Simulation<_, _>| {
        sim.component_blocks()
            .into_iter()
            .map(|(c, b)| (format!("{c:?}"), b))
            .collect::<Vec<_>>()
    };
    assert_eq!(structure(&sim_a), structure(&sim_b));
    assert_eq!(sim_a.storage_cost(), sim_b.storage_cost());
}
