//! Property-based tests of the coding substrate (proptest): MDS
//! reconstruction, symmetric encoding, linearity, and oracle round-trips.

use proptest::prelude::*;
use rsb_coding::{gf256, Code, DecoderOracle, EncoderOracle, Rateless, ReedSolomon, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k distinct blocks of an RS code reconstruct the value.
    #[test]
    fn rs_any_k_subset_decodes(
        k in 1usize..6,
        extra in 1usize..6,
        len in 1usize..200,
        seed in any::<u64>(),
        subset_seed in any::<u64>(),
    ) {
        let n = k + extra;
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(seed, len);
        let blocks = code.encode(&v);
        // Pick a pseudo-random k-subset.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = subset_seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let subset: Vec<_> = order[..k].iter().map(|&i| blocks[i].clone()).collect();
        prop_assert_eq!(code.decode(&subset).unwrap(), v);
    }

    /// Fewer than k distinct blocks never decode (the paper's ⊥).
    #[test]
    fn rs_below_k_is_bottom(k in 2usize..6, len in 1usize..100, seed in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let v = Value::seeded(seed, len);
        let blocks = code.encode(&v);
        prop_assert!(code.decode(&blocks[..k - 1]).is_err());
    }

    /// Symmetric encoding (Definition 3): block sizes are independent of
    /// the value.
    #[test]
    fn rs_symmetry(k in 1usize..5, len in 1usize..100, s1 in any::<u64>(), s2 in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let a = code.encode(&Value::seeded(s1, len));
        let b = code.encode(&Value::seeded(s2, len));
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.size_bits(), y.size_bits());
            prop_assert_eq!(x.size_bits(), code.block_size_bits(x.index()));
        }
    }

    /// RS encoding is linear over GF(256): E(u ⊕ v, i) = E(u, i) ⊕ E(v, i).
    #[test]
    fn rs_linearity(k in 1usize..5, len in 1usize..64, s1 in any::<u64>(), s2 in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 3, len).unwrap();
        let u = Value::seeded(s1, len);
        let v = Value::seeded(s2, len);
        let sum = Value::from_bytes(
            u.as_bytes().iter().zip(v.as_bytes()).map(|(a, b)| a ^ b).collect::<Vec<_>>(),
        );
        for i in 0..code.block_count() as u32 {
            let eu = code.encode_block(&u, i).unwrap();
            let ev = code.encode_block(&v, i).unwrap();
            let esum = code.encode_block(&sum, i).unwrap();
            let xor: Vec<u8> = eu.data().iter().zip(ev.data()).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(esum.data(), &xor[..]);
        }
    }

    /// Rateless: any rank-k block set decodes; systematic prefix always has
    /// full rank.
    #[test]
    fn rateless_roundtrip(k in 1usize..5, len in 1usize..100, seed in any::<u64>(), hi in 0u32..1_000_000) {
        let code = Rateless::new(k, len).unwrap();
        let v = Value::seeded(seed, len);
        // k systematic + a few high-index blocks: always decodable.
        let mut blocks: Vec<_> = (0..k as u32).map(|i| code.encode_block(&v, i).unwrap()).collect();
        blocks.push(code.encode_block(&v, hi + k as u32).unwrap());
        prop_assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    /// GF(256) field axioms on random triples.
    #[test]
    fn gf256_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
        }
    }

    /// Oracle round-trip (Definition 1): pushes followed by done decode.
    #[test]
    fn oracle_roundtrip(k in 1usize..5, len in 1usize..100, seed in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let v = Value::seeded(seed, len);
        let mut enc = EncoderOracle::new(code.clone(), v.clone()).unwrap();
        let mut dec = DecoderOracle::new(code);
        // Push parity-heavy selection.
        for i in (2..k as u32 + 2).rev() {
            dec.push(enc.get(i).unwrap(), 0);
        }
        prop_assert_eq!(dec.done(0), Some(v));
    }
}
