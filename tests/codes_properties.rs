//! Property-based tests of the coding substrate (proptest): MDS
//! reconstruction, symmetric encoding, linearity, and oracle round-trips —
//! plus deterministic fuzz-style sweeps (the vendored proptest stub has no
//! shrinking, so the fuzz loops below draw their own parameters from a
//! SplitMix64 stream: every failure reproduces from the printed seed).

use proptest::prelude::*;
use rsb_coding::matrix::Matrix;
use rsb_coding::{gf256, Code, DecoderOracle, EncoderOracle, Rateless, ReedSolomon, Value};

/// SplitMix64 — the repo-standard deterministic seed stream.
struct Fuzz(u64);

impl Fuzz {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    /// A uniformly chosen `count`-subset of `0..n`, via partial
    /// Fisher–Yates.
    fn subset(&mut self, n: usize, count: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, self.below(i + 1));
        }
        order.truncate(count);
        order
    }
}

/// decode(encode(v)) == v for random `(k, n, len, value)` draws and
/// random erasure patterns: any `k` survivors of `n` blocks reconstruct.
#[test]
fn fuzz_rs_roundtrip_under_random_erasures() {
    let mut fz = Fuzz(0xe9);
    for round in 0..400 {
        let k = 1 + fz.below(8);
        let n = k + 1 + fz.below(8);
        let len = 1 + fz.below(256);
        let seed = fz.next();
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(seed, len);
        let blocks = code.encode(&v);
        assert_eq!(blocks.len(), n);
        // Erase n - k random blocks; the survivors must decode.
        let survivors: Vec<_> = fz
            .subset(n, k)
            .into_iter()
            .map(|i| blocks[i].clone())
            .collect();
        assert_eq!(
            code.decode(&survivors).unwrap(),
            v,
            "round {round}: k={k} n={n} len={len} seed={seed:#x}"
        );
        // One survivor short is the paper's ⊥.
        assert!(
            code.decode(&survivors[..k - 1]).is_err(),
            "round {round}: k-1 blocks must not decode"
        );
    }
}

/// Matrix-inversion consistency on the decode path's actual matrices:
/// every k-subset of Vandermonde rows is invertible (the MDS property),
/// `A·A⁻¹ = A⁻¹·A = I`, and `(A⁻¹)⁻¹ = A`; rank-deficient matrices
/// refuse to invert.
#[test]
fn fuzz_matrix_inversion_consistency() {
    let mut fz = Fuzz(0x5eed);
    for round in 0..300 {
        let k = 1 + fz.below(10);
        let n = k + fz.below(10);
        let vander = Matrix::vandermonde(n, k);
        let rows = fz.subset(n, k);
        let a = vander.select_rows(&rows);
        let inv = a.inverse().unwrap_or_else(|| {
            panic!("round {round}: Vandermonde {rows:?} of ({n},{k}) must invert")
        });
        let id = Matrix::identity(k);
        assert_eq!(a.multiply(&inv), id, "round {round}: A·A⁻¹");
        assert_eq!(inv.multiply(&a), id, "round {round}: A⁻¹·A");
        assert_eq!(
            inv.inverse().expect("inverse of an invertible matrix"),
            a,
            "round {round}: (A⁻¹)⁻¹"
        );
        assert_eq!(a.rank(), k, "round {round}: full rank");

        // Duplicate a row: the matrix drops rank and must not invert.
        if k >= 2 {
            let mut dup_rows = rows.clone();
            dup_rows[0] = dup_rows[1];
            let singular = vander.select_rows(&dup_rows);
            assert!(singular.inverse().is_none(), "round {round}: singular");
            assert!(singular.rank() < k, "round {round}: rank deficit");
        }
    }
}

/// The GF(256) linear-algebra identity behind every decode: encoding is
/// a matrix product, so decoding the survivor blocks through the
/// inverted sub-matrix is exactly `decode(encode(v))`. Checked per
/// column against a random value.
#[test]
fn fuzz_rs_decode_agrees_with_explicit_inversion() {
    let mut fz = Fuzz(0xc0de);
    for round in 0..150 {
        let k = 1 + fz.below(6);
        let n = k + 1 + fz.below(6);
        // One GF(256) symbol per chunk keeps the hand inversion simple:
        // len == k means each block carries exactly one byte.
        let code = ReedSolomon::new(k, n, k).unwrap();
        let v = Value::seeded(fz.next(), k);
        let blocks = code.encode(&v);
        let rows = fz.subset(n, k);
        let sub = code.encoding_matrix().select_rows(&rows);
        let inv = sub.inverse().expect("MDS sub-matrix inverts");
        // Recover the value bytes by applying A⁻¹ to the survivor bytes.
        let survivor_bytes: Vec<u8> = rows.iter().map(|&r| blocks[r].data()[0]).collect();
        let mut recovered = vec![0u8; k];
        for (i, out) in recovered.iter_mut().enumerate() {
            for (j, &s) in survivor_bytes.iter().enumerate() {
                *out = gf256::add(*out, gf256::mul(inv.get(i, j), s));
            }
        }
        assert_eq!(
            recovered,
            v.as_bytes(),
            "round {round}: k={k} n={n} rows={rows:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k distinct blocks of an RS code reconstruct the value.
    #[test]
    fn rs_any_k_subset_decodes(
        k in 1usize..6,
        extra in 1usize..6,
        len in 1usize..200,
        seed in any::<u64>(),
        subset_seed in any::<u64>(),
    ) {
        let n = k + extra;
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(seed, len);
        let blocks = code.encode(&v);
        // Pick a pseudo-random k-subset.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = subset_seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let subset: Vec<_> = order[..k].iter().map(|&i| blocks[i].clone()).collect();
        prop_assert_eq!(code.decode(&subset).unwrap(), v);
    }

    /// Fewer than k distinct blocks never decode (the paper's ⊥).
    #[test]
    fn rs_below_k_is_bottom(k in 2usize..6, len in 1usize..100, seed in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let v = Value::seeded(seed, len);
        let blocks = code.encode(&v);
        prop_assert!(code.decode(&blocks[..k - 1]).is_err());
    }

    /// Symmetric encoding (Definition 3): block sizes are independent of
    /// the value.
    #[test]
    fn rs_symmetry(k in 1usize..5, len in 1usize..100, s1 in any::<u64>(), s2 in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let a = code.encode(&Value::seeded(s1, len));
        let b = code.encode(&Value::seeded(s2, len));
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.size_bits(), y.size_bits());
            prop_assert_eq!(x.size_bits(), code.block_size_bits(x.index()));
        }
    }

    /// RS encoding is linear over GF(256): E(u ⊕ v, i) = E(u, i) ⊕ E(v, i).
    #[test]
    fn rs_linearity(k in 1usize..5, len in 1usize..64, s1 in any::<u64>(), s2 in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 3, len).unwrap();
        let u = Value::seeded(s1, len);
        let v = Value::seeded(s2, len);
        let sum = Value::from_bytes(
            u.as_bytes().iter().zip(v.as_bytes()).map(|(a, b)| a ^ b).collect::<Vec<_>>(),
        );
        for i in 0..code.block_count() as u32 {
            let eu = code.encode_block(&u, i).unwrap();
            let ev = code.encode_block(&v, i).unwrap();
            let esum = code.encode_block(&sum, i).unwrap();
            let xor: Vec<u8> = eu.data().iter().zip(ev.data()).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(esum.data(), &xor[..]);
        }
    }

    /// Rateless: any rank-k block set decodes; systematic prefix always has
    /// full rank.
    #[test]
    fn rateless_roundtrip(k in 1usize..5, len in 1usize..100, seed in any::<u64>(), hi in 0u32..1_000_000) {
        let code = Rateless::new(k, len).unwrap();
        let v = Value::seeded(seed, len);
        // k systematic + a few high-index blocks: always decodable.
        let mut blocks: Vec<_> = (0..k as u32).map(|i| code.encode_block(&v, i).unwrap()).collect();
        blocks.push(code.encode_block(&v, hi + k as u32).unwrap());
        prop_assert_eq!(code.decode(&blocks).unwrap(), v);
    }

    /// GF(256) field axioms on random triples.
    #[test]
    fn gf256_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
        }
    }

    /// Oracle round-trip (Definition 1): pushes followed by done decode.
    #[test]
    fn oracle_roundtrip(k in 1usize..5, len in 1usize..100, seed in any::<u64>()) {
        let code = ReedSolomon::new(k, k + 2, len).unwrap();
        let v = Value::seeded(seed, len);
        let mut enc = EncoderOracle::new(code.clone(), v.clone()).unwrap();
        let mut dec = DecoderOracle::new(code);
        // Push parity-heavy selection.
        for i in (2..k as u32 + 2).rev() {
            dec.push(enc.get(i).unwrap(), 0);
        }
        prop_assert_eq!(dec.done(0), Some(v));
    }
}
