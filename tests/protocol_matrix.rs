//! Cross-crate integration: every protocol × scenario shape × checker,
//! over multiple seeds, with and without failure injection.

use reliable_storage::prelude::*;
use reliable_storage::verify::check_outcome;

fn verify_protocol<P: RegisterProtocol>(
    proto: &P,
    guarantee: Guarantee,
    liveness: LivenessLevel,
    scenario: &Scenario,
) {
    let out = run_scenario(proto, scenario);
    assert!(
        out.completed,
        "{}: scenario did not complete in {} steps (seed {})",
        proto.name(),
        out.steps,
        scenario.seed
    );
    check_outcome(proto, &out, guarantee, liveness).unwrap_or_else(|e| {
        panic!("{} seed {}: {e}", proto.name(), scenario.seed);
    });
}

#[test]
fn adaptive_matrix() {
    let cfg = RegisterConfig::paper(2, 3, 64).unwrap();
    let proto = Adaptive::new(cfg);
    for seed in 0..6u64 {
        let scenario = Scenario::mixed(3, 2, 2, seed);
        verify_protocol(
            &proto,
            Guarantee::StronglyRegular,
            LivenessLevel::FwTerminating,
            &scenario,
        );
    }
}

#[test]
fn abd_matrix() {
    let cfg = RegisterConfig::new(5, 2, 1, 32).unwrap();
    let proto = Abd::new(cfg);
    for seed in 0..6u64 {
        let scenario = Scenario::mixed(3, 2, 2, 100 + seed);
        verify_protocol(
            &proto,
            Guarantee::StronglyRegular,
            LivenessLevel::WaitFree,
            &scenario,
        );
    }
}

#[test]
fn coded_matrix() {
    let cfg = RegisterConfig::paper(1, 2, 32).unwrap();
    let proto = Coded::new(cfg);
    for seed in 0..6u64 {
        let scenario = Scenario::mixed(2, 2, 2, 200 + seed);
        verify_protocol(
            &proto,
            Guarantee::StronglyRegular,
            LivenessLevel::FwTerminating,
            &scenario,
        );
    }
}

#[test]
fn safe_matrix() {
    let cfg = RegisterConfig::paper(2, 2, 32).unwrap();
    let proto = Safe::new(cfg);
    for seed in 0..6u64 {
        let scenario = Scenario::mixed(3, 3, 2, 300 + seed);
        verify_protocol(
            &proto,
            Guarantee::StronglySafe,
            LivenessLevel::WaitFree,
            &scenario,
        );
    }
}

#[test]
fn adaptive_with_object_failures() {
    let cfg = RegisterConfig::paper(2, 2, 64).unwrap(); // n = 6, f = 2
    let proto = Adaptive::new(cfg);
    for seed in 0..4u64 {
        let mut scenario = Scenario::mixed(2, 2, 2, 400 + seed);
        scenario.failures = FailurePlan {
            object_crashes: vec![(30, ObjectId(0)), (90, ObjectId(3))],
            client_crashes: vec![],
        };
        verify_protocol(
            &proto,
            Guarantee::StronglyRegular,
            LivenessLevel::FwTerminating,
            &scenario,
        );
    }
}

#[test]
fn safe_with_client_and_object_failures() {
    let cfg = RegisterConfig::paper(1, 2, 32).unwrap(); // n = 4
    let proto = Safe::new(cfg);
    for seed in 0..4u64 {
        let mut scenario = Scenario::mixed(3, 2, 2, 500 + seed);
        scenario.failures = FailurePlan {
            object_crashes: vec![(40, ObjectId(2))],
            client_crashes: vec![(60, 0)],
        };
        let out = run_scenario(&proto, &scenario);
        assert!(out.completed, "seed {seed}");
        check_outcome(
            &proto,
            &out,
            Guarantee::StronglySafe,
            LivenessLevel::WaitFree,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn all_protocols_weakly_regular_too() {
    // Weak regularity (the lower bound's condition) is implied by every
    // protocol's guarantee except the safe register's.
    let cfg = RegisterConfig::paper(1, 2, 32).unwrap();
    for seed in 0..3u64 {
        let scenario = Scenario::mixed(2, 2, 2, 600 + seed);
        let p = Adaptive::new(cfg);
        let out = run_scenario(&p, &scenario);
        check_outcome(&p, &out, Guarantee::WeaklyRegular, LivenessLevel::LockFree).unwrap();
        let p = Coded::new(cfg);
        let out = run_scenario(&p, &scenario);
        check_outcome(&p, &out, Guarantee::WeaklyRegular, LivenessLevel::LockFree).unwrap();
    }
}

#[test]
fn larger_cluster_smoke() {
    // A wider deployment: n = 14, f = 4, k = 6.
    let cfg = RegisterConfig::paper(4, 6, 96).unwrap();
    let proto = Adaptive::new(cfg);
    let scenario = Scenario::mixed(4, 2, 1, 777);
    verify_protocol(
        &proto,
        Guarantee::StronglyRegular,
        LivenessLevel::FwTerminating,
        &scenario,
    );
}
