//! Offline stand-in for `serde_derive`.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; here the
//! `serde` stub provides blanket impls for every type, so the derives only
//! need to exist and expand to nothing for `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` attributes to compile.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` stub's blanket impl already
/// covers the type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the `serde` stub's blanket impl already
/// covers the type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
