//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the API shape the workspace uses — `Mutex::lock()` returning a
//! guard directly (no `Result`), and `Condvar::wait`/`wait_for` taking
//! `&mut MutexGuard` — on top of the standard library primitives. Poisoning
//! is swallowed (parking_lot has none): a panicked holder does not poison
//! the lock for everyone else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive, `parking_lot`-flavoured.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking; `None` if it is
    /// held elsewhere. Never poisons.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar`] can temporarily relinquish the
/// std guard during a wait while the caller keeps holding this wrapper; it
/// is `Some` at every point user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard vacated")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard vacated")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable, `parking_lot`-flavoured: waits take `&mut MutexGuard`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, atomically releasing the guarded lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard vacated");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard vacated");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Reader–writer lock, `parking_lot`-flavoured (no poisoning, guard-returning
/// `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut done = lock.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(10));
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *shared.0.lock() = true;
        shared.1.notify_all();
        handle.join().unwrap();
    }
}
