//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Throughput`], [`BenchmarkId`] —
//! over a simple wall-clock harness: a short warm-up, then a fixed number of
//! timed batches, reporting the best batch mean (the most noise-robust simple
//! estimator). No statistics machinery, HTML reports, or CLI filtering; the
//! point is that `cargo bench` compiles, runs, and prints comparable numbers
//! without crates.io access.
//!
//! Setting `CRITERION_QUICK_ITERS` (to any value — it is a boolean flag,
//! the value is not parsed) caps measurement work for CI smoke runs.
//!
//! Setting `CRITERION_JSON` to a file path appends one JSON object per
//! benchmark (`name`, `ns_per_iter`, optional `bytes_per_iter` /
//! `elems_per_iter`, `total_iters`) — the hook CI uses to persist a
//! per-commit `BENCH_*.json` artifact of the perf trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement knobs shared by the harness.
#[derive(Debug, Clone)]
struct Settings {
    /// Timed batches per benchmark.
    batches: u32,
    /// Target wall-clock time per batch.
    batch_budget: Duration,
}

impl Settings {
    fn from_env() -> Self {
        // CI smoke mode: tiny fixed iteration budget. Presence-only flag;
        // the variable's value is deliberately not parsed.
        if std::env::var("CRITERION_QUICK_ITERS").is_ok() {
            Settings {
                batches: 2,
                batch_budget: Duration::from_millis(5),
            }
        } else {
            Settings {
                batches: 8,
                batch_budget: Duration::from_millis(60),
            }
        }
    }
}

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(&self.settings, &mut f);
        print_report(&id.0, None, &report);
        self
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(&self.criterion.settings, &mut f);
        print_report(&format!("{}/{}", self.name, id.0), self.throughput, &report);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Iteration driver passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the batch's iteration budget.
    // Named for API parity with real criterion, which clippy cannot know.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-iteration work declaration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/name/parameter`-style id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Debug)]
struct Report {
    best_ns_per_iter: f64,
    total_iters: u64,
}

/// Calibrates an iteration count against the batch budget, then takes the
/// best (minimum) mean across batches.
fn run_bench<F: FnMut(&mut Bencher)>(settings: &Settings, f: &mut F) -> Report {
    // Calibration: find an iteration count that roughly fills one budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= settings.batch_budget / 2 || iters >= 1 << 20 {
            break;
        }
        let scale = if b.elapsed.is_zero() {
            16
        } else {
            ((settings.batch_budget.as_nanos() / b.elapsed.as_nanos().max(1)) as u64).clamp(2, 16)
        };
        iters = iters.saturating_mul(scale);
    }

    let mut best = f64::INFINITY;
    let mut total = 0u64;
    for _ in 0..settings.batches {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.iters;
        let mean = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        if mean < best {
            best = mean;
        }
    }
    Report {
        best_ns_per_iter: best,
        total_iters: total,
    }
}

/// Appends the report as a JSON line to `$CRITERION_JSON`, if set.
/// I/O errors are reported to stderr but never fail the benchmark.
fn append_json(name: &str, throughput: Option<Throughput>, report: &Report) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    // Benchmark names are code-chosen; escape the JSON specials anyway.
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Bytes(b) => format!(",\"bytes_per_iter\":{b}"),
        Throughput::Elements(n) => format!(",\"elems_per_iter\":{n}"),
    });
    let line = format!(
        "{{\"name\":\"{escaped}\",\"ns_per_iter\":{:.3}{rate},\"total_iters\":{}}}\n",
        report.best_ns_per_iter, report.total_iters
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn print_report(name: &str, throughput: Option<Throughput>, report: &Report) {
    append_json(name, throughput, report);
    let time = format_ns(report.best_ns_per_iter);
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Bytes(bytes) => {
            let gib = bytes as f64 / report.best_ns_per_iter; // bytes/ns == GiB-ish/s
            format!("  {gib:.3} GB/s")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 / report.best_ns_per_iter * 1e3;
            format!("  {meps:.3} Melem/s")
        }
    });
    println!(
        "  {name:<48} {time:>12}/iter{rate}  ({} iters)",
        report.total_iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
