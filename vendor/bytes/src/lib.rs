//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses: [`Bytes`], an
//! immutable reference-counted byte buffer whose `clone` is O(1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable buffer of bytes.
///
/// Cloning shares the underlying allocation instead of copying it, which
/// is what the coding layer relies on when fanning a value's blocks out to
/// many base objects.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of `self` restricted to `range` (à la `bytes`).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Extracts the bytes as a vector (copies).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(16) {
            write!(f, "{b:02x}")?;
        }
        if self.data.len() > 16 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a, &*b);
        assert_eq!(a, b);
    }

    #[test]
    fn slice_and_len() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(a.len(), 5);
        assert_eq!(&*a.slice(1..3), &[1, 2]);
        assert_eq!(&*a.slice(..), &*a);
    }
}
