//! Offline stand-in for `proptest`.
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro, `any::<T>()`, integer-range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros — over a deterministic seeded sampler instead of
//! real shrinking. Failures report the test name, case index, and values
//! are reproducible: the case seed is derived from the test name and case
//! index only, so a red case is red on every run and machine.
//!
//! What is intentionally missing versus real proptest: shrinking (a failing
//! input is reported as-is), persistence files, and the combinator zoo
//! (`prop_map` etc.) — none of which the tests in this tree use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error signalled by `prop_assert!`-family macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Derives a case RNG from the test name and case index (stable across
    /// runs and machines — failures are always reproducible).
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed-value strategy (`Just(x)`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// with a reproducible report instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )+) => {$(
        // The caller writes `#[test]` on each fn (real-proptest convention),
        // so it arrives via $meta; emitting another would duplicate it.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..=255, seed in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            let _ = (y, seed);
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec((any::<u8>(), any::<u8>()), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::TestRng::for_case("t", 3).rng;
        let b = crate::TestRng::for_case("t", 3).rng;
        let mut a = crate::TestRng { rng: a };
        let mut b = crate::TestRng { rng: b };
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
