//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as a *capability marker* — types derive
//! `Serialize`/`Deserialize` so that a future wire format can be attached —
//! and never invokes an actual serializer (there is no `serde_json` etc. in
//! the tree). This stub therefore provides the two traits as blanket-implemented
//! markers and re-exports no-op derives, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the codebase compiling without
//! network access to crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Deserialize<'_> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` for code that names the module path.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` for code that names the module path.
pub mod ser {
    pub use crate::Serialize;
}
