//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The simulator only needs a seeded, deterministic generator —
//! reproducibility of schedules is a correctness property here, so a fixed
//! algorithm (xoshiro256** seeded via splitmix64, the same construction
//!  `rand`'s `StdRng` documentation warns you *not* to rely on being stable)
//! is a feature, not a limitation: the same seed yields the same schedule on
//! every platform and toolchain.
//!
//! Provided: [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, [`Rng::gen_bool`], and [`rngs::StdRng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased sample in `[0, bound)` via Lemire-style rejection.
fn sample_below<R: RngCore>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = sample_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = sample_below(rng, span);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    ///
    /// Unlike the real `StdRng` this algorithm is stable forever, which is
    /// exactly what reproducible schedule exploration wants.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=255);
            let _ = y; // full domain: any value is in range
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
