//! Workspace root package.
//!
//! This thin crate exists so the repository's top-level `examples/` and
//! `tests/` directories can exercise the public API of the workspace crates.
//! The actual library lives in [`reliable_storage`] (crate `crates/core`),
//! which re-exports every subsystem.

pub use reliable_storage::*;
